package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/fixed"
	"repro/internal/obs"
)

// Policy selects the degradation response when a monitor is tripped.
type Policy int

// Degradation policies (DESIGN.md §9 policy matrix).
const (
	// PolicyNone detects but never reacts: the corrupted samples
	// stand (the unprotected baseline).
	PolicyNone Policy = iota
	// PolicyRemap retires the suspect physical RET replica and maps a
	// spare circuit into its lane slot — the paper's replicated-
	// circuit design used for repair. Unit-wide faults and spare
	// exhaustion escalate to fallback.
	PolicyRemap
	// PolicyResample redraws a suspect sample a bounded number of
	// times, then rejects it (keeps the current label) — right for
	// transient faults.
	PolicyResample
	// PolicyQuarantine freezes the unit's sites at their current
	// labels: no further updates, no further corruption.
	PolicyQuarantine
	// PolicyFallback routes the unit's sites to the exact CMOS Gibbs
	// kernel: full quality at software cost.
	PolicyFallback

	numPolicies
)

var policyNames = [numPolicies]string{"none", "remap", "resample", "quarantine", "fallback"}

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p < 0 || p >= numPolicies {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return policyNames[p]
}

// ParsePolicy parses a policy name.
func ParsePolicy(s string) (Policy, error) {
	for p, name := range policyNames {
		if s == name {
			return Policy(p), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown policy %q (want %s)", s, strings.Join(policyNames[:], "|"))
}

// Options wires fault injection into a run (core.Config.Faults).
type Options struct {
	// Schedule is the fault schedule in the DSL of Parse.
	Schedule string
	// Seed drives the schedule's Poisson expansion (independent of
	// the chain seed).
	Seed uint64
	// Policy is the degradation response.
	Policy Policy
	// Monitor overrides the detection thresholds (nil: defaults).
	Monitor *MonitorConfig
	// Spares is the number of spare RET circuits per unit available
	// to PolicyRemap (0: default 2; negative: none).
	Spares int
	// MaxResamples bounds PolicyResample retries (0: default 3).
	MaxResamples int
	// Recorder optionally streams detection events and counters into
	// the observability layer (internal/obs). It is excluded from
	// checkpoint fingerprints and never read on the sampling hot path —
	// only when a monitor trips.
	Recorder obs.Recorder
}

// Directive tells the sampling path how to treat a unit's sites.
type Directive int

// Unit directives.
const (
	// DirectiveSample: sample on the (possibly degraded) RSU.
	DirectiveSample Directive = iota
	// DirectiveFallback: use the exact CMOS Gibbs kernel.
	DirectiveFallback
	// DirectiveSkip: keep the current label (quarantined unit).
	DirectiveSkip
)

// Reaction is the per-sample policy decision.
type Reaction int

// Per-sample reactions.
const (
	// ReactAccept: the sample stands.
	ReactAccept Reaction = iota
	// ReactResample: redraw the sample on the same unit.
	ReactResample
	// ReactReject: discard the sample, keep the current label (a
	// rejected Metropolis move; fallback units redraw on the CMOS
	// kernel instead).
	ReactReject
)

// Event is a structured detection record with full provenance.
type Event struct {
	// Seq is the global event sequence number (assigned by Audit).
	//lint:ignore rsulint/ckptfield Seq is assigned by Audit over the merged event list, not serialized
	Seq int `json:"seq"`
	// Sweep and Unit locate the detection; Replica is the physical
	// RET replica flagged (-1: unit-wide).
	Sweep int `json:"sweep"`
	//lint:ignore rsulint/ckptfield Unit is the owning unitCtl's index, recomputed on restore
	Unit    int `json:"unit"`
	Replica int `json:"replica"`
	// Suspect names the monitor class that tripped; Measure is the
	// monitored statistic at trip time and Threshold the limit it
	// crossed.
	//lint:ignore rsulint/ckptfield Suspect is SuspectID.String(), rederived from the serialized id
	Suspect   string  `json:"suspect"`
	Measure   float64 `json:"measure"`
	Threshold float64 `json:"threshold"`
	// Action records the policy reaction ("" when the event tripped
	// outside a sample, which does not happen in practice).
	Action string `json:"action,omitempty"`

	suspect Suspect
}

// clearRec records a monitor trip clearing (hysteresis recovery), used
// by the audit to reconstruct trip spans.
type clearRec struct {
	sweep, replica int
	suspect        Suspect
}

// Session owns all fault state of one run: the compiled timeline, one
// UnitCtx per fault domain, and the selected policy. Unit state is
// sharded — each unit is touched by exactly one worker per color pass
// in the gibbs engine (a unit is an image row) — so a Session is safe
// for the engine's row-parallel sweeps and its results are invariant
// to the worker count.
type Session struct {
	tl           *Timeline
	policy       Policy
	mcfg         MonitorConfig
	spares       int
	maxResamples int
	units        []UnitCtx
	lastSweep    int
	rec          obs.Recorder
}

// UnitCtx is the per-unit fault state: active fault effects, monitor
// state per physical replica, and the unit's degradation status.
type UnitCtx struct {
	s  *Session
	id int

	// Logical lane slot -> physical replica (remap rewires this).
	slot []int
	// Monitor state, one per physical replica (primaries + spares).
	mons []repMon
	// Per-physical-replica fault effects, rebuilt each sweep.
	rateScale  []float64
	extraRate  []float64
	stuckSet   []uint8
	stuckClear []uint8
	wrap       []bool

	active        []Instance
	sweep         int
	drawSeq       uint64
	sparesUsed    int
	quarantinedAt int
	fallbackAt    int

	unitTripped [numSuspects]bool

	events []Event
	clears []clearRec

	// Per-sample scratch.
	sampleSuspect bool
	unitSuspect   bool
	suspectReps   []int
	pendingFrom   int

	resamples, rejects uint64
	remaps             int
}

// NewSession compiles nothing itself — callers Compile a Schedule for
// their geometry and hand the Timeline in, together with the policy
// options. Monitor defaults and spare/retry counts are resolved here.
func NewSession(tl *Timeline, opt Options) *Session {
	s := &Session{
		tl:           tl,
		policy:       opt.Policy,
		mcfg:         DefaultMonitorConfig(),
		spares:       opt.Spares,
		maxResamples: opt.MaxResamples,
		lastSweep:    -1,
		rec:          opt.Recorder,
	}
	if opt.Monitor != nil {
		s.mcfg = *opt.Monitor
	}
	if s.spares == 0 {
		s.spares = 2
	} else if s.spares < 0 {
		s.spares = 0
	}
	if s.maxResamples <= 0 {
		s.maxResamples = 3
	}
	phys := tl.Replicas + s.spares
	s.units = make([]UnitCtx, tl.Units)
	for u := range s.units {
		uc := &s.units[u]
		uc.s = s
		uc.id = u
		uc.slot = make([]int, tl.Replicas)
		for l := range uc.slot {
			uc.slot[l] = l
		}
		uc.mons = make([]repMon, phys)
		for r := range uc.mons {
			uc.mons[r] = newRepMon()
		}
		uc.rateScale = make([]float64, phys)
		uc.extraRate = make([]float64, phys)
		uc.stuckSet = make([]uint8, phys)
		uc.stuckClear = make([]uint8, phys)
		uc.wrap = make([]bool, phys)
		uc.quarantinedAt = -1
		uc.fallbackAt = -1
		uc.beginSweep(0)
	}
	return s
}

// Policy returns the session's degradation policy.
func (s *Session) Policy() Policy { return s.policy }

// Timeline returns the compiled fault timeline.
func (s *Session) Timeline() *Timeline { return s.tl }

// Unit returns the context of one fault domain.
func (s *Session) Unit(u int) *UnitCtx { return &s.units[u] }

// BeginSweep advances every unit to `sweep`, rebuilding the active
// fault effects. Idempotent per sweep (gibbs.Run announces the sweep
// to every worker's sampler; only the first call acts). Must be called
// between color passes only — i.e. with no sample in flight.
func (s *Session) BeginSweep(sweep int) {
	if sweep == s.lastSweep {
		return
	}
	s.lastSweep = sweep
	for u := range s.units {
		s.units[u].beginSweep(sweep)
	}
}

// beginSweep rebuilds the per-replica fault effects for one sweep.
func (uc *UnitCtx) beginSweep(sweep int) {
	uc.sweep = sweep
	uc.active = uc.s.tl.Active(uc.id, sweep, uc.active[:0])
	phys := len(uc.mons)
	for r := 0; r < phys; r++ {
		uc.rateScale[r] = 1
		uc.extraRate[r] = 0
		uc.stuckSet[r] = 0
		uc.stuckClear[r] = 0
		uc.wrap[r] = false
	}
	for _, inst := range uc.active {
		lo, hi := inst.Replica, inst.Replica+1
		if inst.Replica < 0 {
			lo, hi = 0, phys
		}
		for r := lo; r < hi; r++ {
			switch inst.Kind {
			case Dead:
				uc.rateScale[r] = 0
			case Hot:
				uc.extraRate[r] += inst.Storm
			case Stuck:
				if inst.Val != 0 {
					uc.stuckSet[r] |= 1 << inst.Bit
				} else {
					uc.stuckClear[r] |= 1 << inst.Bit
				}
			case Wearout:
				age := float64(sweep - inst.Start + 1)
				uc.rateScale[r] *= math.Exp(-inst.Accel * age)
			case Quiesce:
				uc.extraRate[r] += inst.Leak
			case Wrap:
				uc.wrap[r] = true
			}
		}
	}
}

// Directive reports how the sampling path must treat this unit's
// sites right now.
func (uc *UnitCtx) Directive() Directive {
	if uc.fallbackAt >= 0 {
		return DirectiveFallback
	}
	if uc.quarantinedAt >= 0 {
		return DirectiveSkip
	}
	return DirectiveSample
}

// BeginSample resets the per-sample suspicion scratch. Called by the
// RSU pipeline at the top of each variable evaluation.
func (uc *UnitCtx) BeginSample() {
	uc.sampleSuspect = false
	uc.unitSuspect = false
	uc.suspectReps = uc.suspectReps[:0]
	uc.pendingFrom = len(uc.events)
}

// NextReplica returns the physical replica the round-robin scheduler
// (§5.3's two-bit counter) assigns to the next channel draw, after the
// remap policy's slot rewiring.
func (uc *UnitCtx) NextReplica() int {
	l := int(uc.drawSeq % uint64(len(uc.slot)))
	uc.drawSeq++
	return uc.slot[l]
}

// ApplyCode returns the intensity code the LED driver actually latches
// for a commanded code on a replica — identical unless a stuck-at
// fault is active.
func (uc *UnitCtx) ApplyCode(c fixed.Intensity, rep int) fixed.Intensity {
	set, clr := uc.stuckSet[rep], uc.stuckClear[rep]
	if set|clr == 0 {
		return c
	}
	return fixed.ClampIntensity(int((uint8(c) | set) &^ clr))
}

// RateScale returns the multiplicative rate degradation of a replica
// (1: healthy, 0: dead SPAD, in between: wear-out decay).
func (uc *UnitCtx) RateScale(rep int) float64 { return uc.rateScale[rep] }

// ExtraRace returns the spurious extra rate racing on a replica, as a
// multiple of the circuit's full-on rate (dark-count storm and
// quiescence leakage).
func (uc *UnitCtx) ExtraRace(rep int) float64 { return uc.extraRate[rep] }

// WrapActive reports whether the TTF register wrap fault is active on
// a replica's lane.
func (uc *UnitCtx) WrapActive(rep int) bool { return uc.wrap[rep] }

// Observe feeds one TTF measurement to the unit's monitors, possibly
// raising Events and marking the in-flight sample suspect.
func (uc *UnitCtx) Observe(o Obs) {
	cfg := &uc.s.mcfg
	m := &uc.mons[o.Replica]
	m.samples++
	if o.Saturated {
		m.saturations++
	}

	if cfg.CodeReadback {
		// The trip is sticky: a stuck bit only corrupts codes that
		// exercise it, so clean readbacks interleave with bad ones.
		// Clear only after a long uninterrupted clean run.
		if o.Applied != o.Commanded {
			m.cleanReads = 0
			m.readbackBad = true
			uc.trip(o.Replica, SuspectReadback, float64(o.Applied), float64(o.Commanded))
		} else if m.readbackBad {
			m.cleanReads++
			if m.cleanReads >= 2*cfg.StallWindow {
				m.readbackBad = false
				m.cleanReads = 0
				uc.clear(o.Replica, SuspectReadback)
			}
		}
	}

	if o.Dark {
		// A dark channel must saturate. A readout below max count is a
		// wrapped register phase or a spurious race clock winning the
		// race. Sticky like readback: only a solid run of properly
		// saturating dark reads clears the trip.
		if cfg.DarkFire {
			if !o.Saturated {
				m.darkSatRun = 0
				uc.trip(o.Replica, SuspectDarkFire, float64(o.Count), 0)
			} else if m.tripped[SuspectDarkFire] {
				m.darkSatRun++
				if m.darkSatRun >= cfg.StormWindow {
					m.darkSatRun = 0
					uc.clear(o.Replica, SuspectDarkFire)
				}
			}
		}
		uc.noteTrips(o.Replica)
		return // dark channels carry no rate information
	}

	if o.ExpCount < cfg.StallMaxExpTicks {
		if o.Saturated {
			m.stallRun++
			if m.stallRun >= cfg.StallWindow {
				uc.trip(o.Replica, SuspectStall, float64(m.stallRun), float64(cfg.StallWindow))
			}
		} else {
			m.stallRun = 0
			uc.clear(o.Replica, SuspectStall)
		}
	}

	if o.ExpCount >= cfg.StormMinExpTicks {
		// Storm watchdog: a dim channel firing instantly, repeatedly,
		// is a dark-count storm — much faster than waiting for the
		// EWMA to drift below RatioLow.
		if o.Count == 0 {
			m.zeroRun++
			if m.zeroRun >= cfg.StormWindow {
				uc.trip(o.Replica, SuspectStorm, float64(m.zeroRun), float64(cfg.StormWindow))
			}
		} else {
			m.zeroRun = 0
		}
	}

	ratio := (float64(o.Count) + 0.5) / (o.ExpCount + 0.5)
	if m.ewmaN == 0 {
		m.ewma = 1
	}
	m.ewmaN++
	m.ewma += cfg.EWMAAlpha * (ratio - m.ewma)
	if m.ewmaN >= cfg.MinSamples {
		switch {
		case m.ewma > cfg.RatioHigh:
			uc.trip(o.Replica, SuspectSlow, m.ewma, cfg.RatioHigh)
		case m.ewma < cfg.RatioLow:
			// A single depressed replica is a hot SPAD; every replica
			// depressed at once points at shared pipeline state (the
			// quiescence scheduler), not one circuit.
			if uc.corroboratedFast(o.Replica) {
				uc.tripUnit(SuspectFast, m.ewma, cfg.RatioLow)
			} else {
				uc.trip(o.Replica, SuspectStorm, m.ewma, cfg.RatioLow)
			}
		case m.ewma > cfg.RatioLow*1.5 && m.ewma < cfg.RatioHigh/1.5:
			uc.clear(o.Replica, SuspectSlow)
			uc.clear(o.Replica, SuspectStorm)
			uc.maybeClearFast()
		}
	}
	uc.noteTrips(o.Replica)
}

// corroboratedFast reports whether every other in-service replica with
// a warmed-up EWMA is also clearly depressed.
func (uc *UnitCtx) corroboratedFast(rep int) bool {
	cfg := &uc.s.mcfg
	n := 0
	for r := range uc.mons {
		m := &uc.mons[r]
		if r == rep || !m.inService() || m.ewmaN < cfg.MinSamples {
			continue
		}
		n++
		if m.ewma >= cfg.RatioLow*1.5 {
			return false
		}
	}
	return n > 0
}

// noteTrips marks the in-flight sample suspect if the replica or the
// unit has any active trip.
func (uc *UnitCtx) noteTrips(rep int) {
	for s := Suspect(0); s < numSuspects; s++ {
		if uc.mons[rep].tripped[s] {
			uc.sampleSuspect = true
			uc.noteSuspectRep(rep)
			break
		}
	}
	for s := Suspect(0); s < numSuspects; s++ {
		if uc.unitTripped[s] {
			uc.sampleSuspect = true
			uc.unitSuspect = true
			break
		}
	}
}

func (uc *UnitCtx) noteSuspectRep(rep int) {
	for _, r := range uc.suspectReps {
		if r == rep {
			return
		}
	}
	uc.suspectReps = append(uc.suspectReps, rep)
}

// trip raises a per-replica suspect (rising-edge deduplicated).
func (uc *UnitCtx) trip(rep int, s Suspect, measure, threshold float64) {
	m := &uc.mons[rep]
	if m.tripped[s] {
		return
	}
	m.tripped[s] = true
	uc.raise(rep, s, measure, threshold)
}

// tripUnit raises a unit-wide suspect.
func (uc *UnitCtx) tripUnit(s Suspect, measure, threshold float64) {
	if uc.unitTripped[s] {
		uc.sampleSuspect = true
		uc.unitSuspect = true
		return
	}
	uc.unitTripped[s] = true
	uc.raise(-1, s, measure, threshold)
}

func (uc *UnitCtx) clear(rep int, s Suspect) {
	m := &uc.mons[rep]
	if !m.tripped[s] {
		return
	}
	m.tripped[s] = false
	uc.clears = append(uc.clears, clearRec{sweep: uc.sweep, replica: rep, suspect: s})
}

func (uc *UnitCtx) clearUnit(s Suspect) {
	if !uc.unitTripped[s] {
		return
	}
	uc.unitTripped[s] = false
	uc.clears = append(uc.clears, clearRec{sweep: uc.sweep, replica: -1, suspect: s})
}

// maybeClearFast clears the unit-wide fast trip once no warmed-up
// in-service replica remains depressed.
func (uc *UnitCtx) maybeClearFast() {
	if !uc.unitTripped[SuspectFast] {
		return
	}
	cfg := &uc.s.mcfg
	for r := range uc.mons {
		m := &uc.mons[r]
		if !m.inService() || m.ewmaN < cfg.MinSamples {
			continue
		}
		if m.ewma < cfg.RatioLow*1.5 {
			return
		}
	}
	uc.clearUnit(SuspectFast)
}

func (uc *UnitCtx) raise(rep int, s Suspect, measure, threshold float64) {
	uc.sampleSuspect = true
	if rep < 0 {
		uc.unitSuspect = true
	} else {
		uc.noteSuspectRep(rep)
	}
	uc.events = append(uc.events, Event{
		Sweep: uc.sweep, Unit: uc.id, Replica: rep,
		Suspect: s.String(), Measure: measure, Threshold: threshold,
		suspect: s,
	})
	// The obs recorder is mutex-guarded, so emitting from the engine's
	// worker goroutines (which own disjoint unit shards) is safe.
	obs.Add(uc.s.rec, "fault.detections", 1)
	obs.Emit(uc.s.rec, "fault.detect", map[string]any{
		"sweep": uc.sweep, "unit": uc.id, "replica": rep,
		"suspect": s.String(), "measure": measure, "threshold": threshold,
	})
}

// AfterSample applies the session policy to the just-completed sample.
// tries is the number of redraws already spent on this site (for
// PolicyResample's bound).
func (uc *UnitCtx) AfterSample(tries int) Reaction {
	if !uc.sampleSuspect {
		return ReactAccept
	}
	s := uc.s
	switch s.policy {
	case PolicyResample:
		if tries < s.maxResamples {
			uc.resamples++
			uc.setAction("resample")
			return ReactResample
		}
		uc.rejects++
		uc.setAction("reject")
		return ReactReject
	case PolicyRemap:
		escalate := uc.unitSuspect
		for _, rep := range uc.suspectReps {
			if !uc.remapReplica(rep) {
				escalate = true
			}
		}
		if escalate {
			uc.enterFallback()
			uc.setAction("fallback")
		} else {
			uc.setAction("remap")
		}
		uc.rejects++
		return ReactReject
	case PolicyQuarantine:
		if uc.quarantinedAt < 0 {
			uc.quarantinedAt = uc.sweep
		}
		uc.rejects++
		uc.setAction("quarantine")
		return ReactReject
	case PolicyFallback:
		uc.enterFallback()
		uc.rejects++
		uc.setAction("fallback")
		return ReactReject
	default:
		uc.setAction("none")
		return ReactAccept
	}
}

// remapReplica rewires every lane slot served by rep to a fresh spare.
// Returns false when no spare is left (caller escalates).
func (uc *UnitCtx) remapReplica(rep int) bool {
	mapped := false
	for l, phys := range uc.slot {
		if phys != rep {
			continue
		}
		if uc.sparesUsed >= uc.s.spares {
			return false
		}
		uc.slot[l] = uc.s.tl.Replicas + uc.sparesUsed
		uc.sparesUsed++
		uc.remaps++
		mapped = true
	}
	if mapped {
		uc.mons[rep].removedAt = uc.sweep
	}
	return true
}

func (uc *UnitCtx) enterFallback() {
	if uc.fallbackAt < 0 {
		uc.fallbackAt = uc.sweep
	}
}

// setAction stamps the policy reaction onto the events raised during
// the in-flight sample.
func (uc *UnitCtx) setAction(action string) {
	for i := uc.pendingFrom; i < len(uc.events); i++ {
		if uc.events[i].Action == "" {
			uc.events[i].Action = action
		}
	}
}

// Saturations returns the unit's total TTF register saturation count
// across all physical replicas (the counter the timer satellite fix
// exposes; see rsu.TTFTimer).
func (uc *UnitCtx) Saturations() uint64 {
	var n uint64
	for r := range uc.mons {
		n += uc.mons[r].saturations
	}
	return n
}

// Audit reconciles injected faults against detections. Buckets:
//
//   - Detected: a compatible Event fired inside the instance's active
//     window (plus a small grace for monitor lag).
//   - Masked: the instance arrived on an already-degraded path — a
//     quarantined or fallback unit, a remapped-out replica, or an
//     element already flagged by a compatible active trip — so it
//     cannot produce a *new* detection (and cannot corrupt output
//     under the active policy). Degradation raised strictly before
//     the arrival sweep always masks; degradation raised AT the
//     arrival sweep masks only when no compatible event claims the
//     instance first (the unit's own detection-triggered degradation
//     must not mask the very instance that caused it).
//   - Late: the instance armed too close to the end of the run for
//     its monitor's detection-latency budget (see latencyBudget).
//   - Unaccounted: none of the above — a detection escape. Zero for
//     deterministic schedules (enforced by tests and the CI smoke).
type Audit struct {
	Policy   string     `json:"policy"`
	Schedule string     `json:"schedule,omitempty"`
	Injected []Instance `json:"injected"`
	Events   []Event    `json:"events"`
	Summary  Summary    `json:"summary"`
}

// Summary is the audit's scalar roll-up (the CI smoke golden).
type Summary struct {
	Injected         int    `json:"injected"`
	Detected         int    `json:"detected"`
	Masked           int    `json:"masked"`
	Late             int    `json:"late"`
	Unaccounted      int    `json:"unaccounted"`
	Events           int    `json:"events"`
	FalseAlarms      int    `json:"false_alarms"`
	Resamples        uint64 `json:"resamples"`
	Rejects          uint64 `json:"rejects"`
	Remaps           int    `json:"remaps"`
	SparesUsed       int    `json:"spares_used"`
	QuarantinedUnits int    `json:"quarantined_units"`
	FallbackUnits    int    `json:"fallback_units"`
	TimerSaturations uint64 `json:"timer_saturations"`
}

// auditGrace extends an instance's matching window past its end, in
// sweeps, to cover monitor lag (EWMA smoothing, watchdog windows).
const auditGrace = 3

// latencyBudget is the per-kind detection-latency budget in sweeps:
// instances armed with less than this budget before the run ends are
// classified Late rather than Unaccounted.
func latencyBudget(k Kind) int {
	switch k {
	case Stuck, Wrap:
		return 1
	case Dead:
		return 2
	case Hot, Quiesce:
		return 4
	default: // Wearout: gradual decay needs sweeps to cross RatioHigh
		return 8
	}
}

// compatible reports whether suspect class s is a plausible detection
// of fault kind k (the taxonomy mapping plus cross-signatures: a dead
// SPAD also drifts the EWMA high, a storm also drifts it low, a stuck
// bit shifts the rate either way).
func compatible(s Suspect, k Kind) bool {
	switch s {
	case SuspectStall:
		return k == Dead || k == Wearout
	case SuspectStorm:
		return k == Hot || k == Quiesce || k == Stuck
	case SuspectSlow:
		return k == Wearout || k == Dead || k == Stuck
	case SuspectFast:
		return k == Quiesce || k == Hot
	case SuspectReadback:
		return k == Stuck
	default: // SuspectDarkFire: any spurious race clock fires dark channels
		return k == Wrap || k == Hot || k == Quiesce
	}
}

// Audit computes the reconciliation. Call after the run completes (no
// samples in flight).
func (s *Session) Audit() *Audit {
	a := &Audit{Policy: s.policy.String(), Injected: s.tl.Injected()}

	// Collect events in deterministic global order and assign Seq.
	for u := range s.units {
		a.Events = append(a.Events, s.units[u].events...)
	}
	sort.SliceStable(a.Events, func(i, j int) bool {
		if a.Events[i].Sweep != a.Events[j].Sweep {
			return a.Events[i].Sweep < a.Events[j].Sweep
		}
		return a.Events[i].Unit < a.Events[j].Unit
	})
	for i := range a.Events {
		a.Events[i].Seq = i
	}

	matched := make([]bool, len(a.Events))
	sum := &a.Summary
	sum.Injected = len(a.Injected)
	for _, inst := range a.Injected {
		uc := &s.units[inst.Unit]
		switch {
		case uc.maskedArrival(inst, inst.Start-1):
			sum.Masked++
		case s.detected(a.Events, matched, inst):
			sum.Detected++
		case uc.maskedArrival(inst, inst.Start):
			sum.Masked++
		case inst.Start+latencyBudget(inst.Kind) > s.tl.Sweeps:
			sum.Late++
		default:
			sum.Unaccounted++
		}
	}
	for i, e := range a.Events {
		if !matched[i] && !s.eventExplained(e) {
			sum.FalseAlarms++
		}
	}
	sum.Events = len(a.Events)

	for u := range s.units {
		uc := &s.units[u]
		sum.Resamples += uc.resamples
		sum.Rejects += uc.rejects
		sum.Remaps += uc.remaps
		sum.SparesUsed += uc.sparesUsed
		if uc.quarantinedAt >= 0 {
			sum.QuarantinedUnits++
		}
		if uc.fallbackAt >= 0 {
			sum.FallbackUnits++
		}
		sum.TimerSaturations += uc.Saturations()
	}
	return a
}

// maskedArrival reports whether the instance's path was degraded or
// flagged by sweep `by`. The audit calls it twice: with Start-1 (a
// strictly-prior mask always wins) and, after the detection match
// fails, with Start (same-sweep degradation by some *other* fault —
// the instance's own trip was checked first and would have claimed it).
func (uc *UnitCtx) maskedArrival(inst Instance, by int) bool {
	if uc.fallbackAt >= 0 && uc.fallbackAt <= by {
		return true
	}
	if uc.quarantinedAt >= 0 && uc.quarantinedAt <= by {
		return true
	}
	if inst.Replica >= 0 {
		if m := &uc.mons[inst.Replica]; !m.inService() && m.removedAt <= by {
			return true
		}
	}
	// A compatible trip active by `by`: the monitors already consider
	// this element faulty, so a redundant fault on it cannot raise a
	// new rising edge.
	for sus := Suspect(0); sus < numSuspects; sus++ {
		if !compatible(sus, inst.Kind) {
			continue
		}
		if inst.Replica >= 0 && uc.tripActiveAt(inst.Replica, sus, by) {
			return true
		}
		if uc.tripActiveAt(-1, sus, by) {
			return true
		}
	}
	return false
}

// tripActiveAt reconstructs from the event/clear history whether a
// trip was active at the given sweep.
func (uc *UnitCtx) tripActiveAt(replica int, sus Suspect, sweep int) bool {
	state, known := false, false
	lastAt := -1
	for _, e := range uc.events {
		if e.Replica == replica && e.suspect == sus && e.Sweep <= sweep && e.Sweep >= lastAt {
			state, known, lastAt = true, true, e.Sweep
		}
	}
	for _, c := range uc.clears {
		if c.replica == replica && c.suspect == sus && c.sweep <= sweep && c.sweep >= lastAt {
			state, known, lastAt = false, true, c.sweep
		}
	}
	return known && state
}

// detected finds a compatible event inside the instance's window and
// marks it matched.
func (s *Session) detected(events []Event, matched []bool, inst Instance) bool {
	found := false
	for i, e := range events {
		if e.Unit != inst.Unit || e.Sweep < inst.Start {
			continue
		}
		if end := inst.End(); end >= 0 && e.Sweep >= end+auditGrace {
			continue
		}
		if inst.Replica >= 0 && e.Replica >= 0 && e.Replica != inst.Replica {
			continue
		}
		if !compatible(e.suspect, inst.Kind) {
			continue
		}
		matched[i] = true
		found = true
	}
	return found
}

// eventExplained reports whether an event lies inside *some* injected
// instance's window on its unit (it may match an instance another
// event already matched — rising-edge dedup means one event can cover
// several overlapping instances).
func (s *Session) eventExplained(e Event) bool {
	for _, inst := range s.tl.Injected() {
		if inst.Unit != e.Unit || e.Sweep < inst.Start {
			continue
		}
		if end := inst.End(); end >= 0 && e.Sweep >= end+auditGrace {
			continue
		}
		if inst.Replica >= 0 && e.Replica >= 0 && e.Replica != inst.Replica {
			continue
		}
		if compatible(e.suspect, inst.Kind) {
			return true
		}
	}
	return false
}

// WriteJSON writes the audit as indented JSON (the rsudiag -faultlog
// sink and the offline injected-vs-detected audit format).
func (a *Audit) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
