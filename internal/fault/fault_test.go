package fault

import (
	"reflect"
	"testing"
)

func TestParseDefaults(t *testing.T) {
	s, err := Parse("dead")
	if err != nil {
		t.Fatal(err)
	}
	want := Clause{Kind: Dead, Unit: -1, Dur: -1, Replica: -1, Bit: 3, Storm: 4, Accel: 0.5, Leak: 2}
	if len(s.Clauses) != 1 || s.Clauses[0] != want {
		t.Errorf("Parse(\"dead\") = %+v, want %+v", s.Clauses, want)
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ";", " ; "} {
		s, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		} else if len(s.Clauses) != 0 {
			t.Errorf("Parse(%q) produced clauses %+v", spec, s.Clauses)
		}
	}
}

func TestParseFull(t *testing.T) {
	s, err := Parse("stuck:unit=3,sweep=10,dur=5,replica=2,bit=1,val=0;hot:rate=1e-3,storm=8")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clauses) != 2 {
		t.Fatalf("got %d clauses", len(s.Clauses))
	}
	c := s.Clauses[0]
	if c.Kind != Stuck || c.Unit != 3 || c.Sweep != 10 || c.Dur != 5 || c.Replica != 2 || c.Bit != 1 || c.Val != 0 {
		t.Errorf("stuck clause = %+v", c)
	}
	h := s.Clauses[1]
	if h.Kind != Hot || h.Rate != 1e-3 || h.Storm != 8 {
		t.Errorf("hot clause = %+v", h)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"gamma",                // unknown kind
		"dead:when=3",          // unknown key
		"dead:unit",            // missing value
		"dead:unit=x",          // non-numeric
		"stuck:bit=4",          // intensity codes are 4-bit
		"stuck:val=2",          // stuck-at is binary
		"hot:rate=-1",          // negative rate
		"dead:sweep=-1",        // negative sweep
		"dead:replica=64",      // replica out of range
		"dead:unit=1;bad:unit", // error in later clause
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

// TestParseStringRoundTrip: the canonical rendering must parse back to
// the same clauses.
func TestParseStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"dead:unit=3,sweep=10",
		"hot:rate=0.001,storm=8",
		"stuck:unit=0,sweep=2,dur=5,bit=3,val=0",
		"wearout:unit=7,sweep=1,accel=0.4;wrap:unit=2,sweep=6,dur=4",
		"quiesce:unit=1,sweep=3,leak=2.5",
		"dead:unit=1;dead:unit=2;hot:rate=1e-05,storm=4",
	} {
		s1, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", spec, s1.String(), err)
		}
		if !reflect.DeepEqual(s1.Clauses, s2.Clauses) {
			t.Errorf("round trip of %q via %q changed clauses:\n%+v\n%+v",
				spec, s1.String(), s1.Clauses, s2.Clauses)
		}
	}
}

func TestKindUnitWide(t *testing.T) {
	wide := map[Kind]bool{Quiesce: true, Wrap: true}
	for k := Kind(0); k < numKinds; k++ {
		if k.UnitWide() != wide[k] {
			t.Errorf("%v.UnitWide() = %v", k, k.UnitWide())
		}
	}
}

func compile(t *testing.T, spec string, seed uint64, units, sweeps, sites, replicas int) *Timeline {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = seed
	tl, err := s.Compile(units, sweeps, sites, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// TestCompileDeterministic: the expansion is a pure function of
// (schedule, seed, geometry).
func TestCompileDeterministic(t *testing.T) {
	const spec = "hot:rate=5e-3,storm=6;dead:rate=1e-3"
	a := compile(t, spec, 42, 16, 30, 64, 4)
	b := compile(t, spec, 42, 16, 30, 64, 4)
	if !reflect.DeepEqual(a.Injected(), b.Injected()) {
		t.Error("same seed, different timelines")
	}
	c := compile(t, spec, 43, 16, 30, 64, 4)
	if reflect.DeepEqual(a.Injected(), c.Injected()) {
		t.Error("different seeds, identical timelines")
	}
	if len(a.Injected()) == 0 {
		t.Error("rate clauses injected nothing over 16x30x64 exposure")
	}
}

// TestCompileTargeted: targeted clauses land exactly where aimed, out-
// of-range targets are dropped, unit=-1 fans out, and unit-wide kinds
// are forced to replica -1.
func TestCompileTargeted(t *testing.T) {
	tl := compile(t, "dead:unit=3,sweep=2,replica=1;wrap:unit=1,sweep=4,replica=2;stuck:unit=99,sweep=0;dead:unit=0,sweep=99", 0, 8, 10, 4, 4)
	insts := tl.Injected()
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want 2 (out-of-range dropped): %+v", len(insts), insts)
	}
	// Canonical order: sorted by (Start, Unit) with Seq assigned.
	if insts[0].Kind != Dead || insts[0].Unit != 3 || insts[0].Start != 2 || insts[0].Replica != 1 || insts[0].Seq != 0 {
		t.Errorf("first instance %+v", insts[0])
	}
	if insts[1].Kind != Wrap || insts[1].Unit != 1 || insts[1].Start != 4 || insts[1].Seq != 1 {
		t.Errorf("second instance %+v", insts[1])
	}
	if insts[1].Replica != -1 {
		t.Errorf("unit-wide wrap kept replica %d", insts[1].Replica)
	}

	fan := compile(t, "dead:sweep=1", 0, 5, 10, 4, 4)
	if len(fan.Injected()) != 5 {
		t.Errorf("unit=-1 fanned to %d units, want 5", len(fan.Injected()))
	}
}

// TestCompileDurationDefaults: structural faults persist, noise bursts
// get the transient default.
func TestCompileDurationDefaults(t *testing.T) {
	tl := compile(t, "dead:unit=0,sweep=1;hot:unit=0,sweep=1", 0, 1, 10, 4, 4)
	for _, inst := range tl.Injected() {
		switch inst.Kind {
		case Dead:
			if inst.Dur != 0 || inst.End() != -1 || !inst.ActiveAt(9) {
				t.Errorf("dead not permanent: %+v", inst)
			}
		case Hot:
			if inst.Dur != 3 || inst.End() != 4 || inst.ActiveAt(4) || !inst.ActiveAt(3) {
				t.Errorf("hot not a 3-sweep burst: %+v", inst)
			}
		}
	}
}

func TestTimelineActive(t *testing.T) {
	tl := compile(t, "dead:unit=2,sweep=3;hot:unit=2,sweep=5,dur=2", 0, 4, 20, 4, 4)
	if got := tl.Active(2, 2, nil); len(got) != 0 {
		t.Errorf("sweep 2: %+v", got)
	}
	if got := tl.Active(2, 6, nil); len(got) != 2 {
		t.Errorf("sweep 6: %+v", got)
	}
	if got := tl.Active(2, 7, nil); len(got) != 1 || got[0].Kind != Dead {
		t.Errorf("sweep 7 (hot expired): %+v", got)
	}
	if got := tl.Active(0, 6, nil); len(got) != 0 {
		t.Errorf("unit 0: %+v", got)
	}
	if got := tl.Active(-1, 6, nil); len(got) != 0 {
		t.Errorf("out-of-range unit: %+v", got)
	}
}

func TestCompileRejectsBadGeometry(t *testing.T) {
	s, err := Parse("dead")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range [][4]int{{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}} {
		if _, err := s.Compile(g[0], g[1], g[2], g[3]); err == nil {
			t.Errorf("geometry %v accepted", g)
		}
	}
}

// TestClauseStreamDecorrelated: distinct (clause, unit) pairs must get
// distinct streams (the expansion would otherwise correlate arrival
// times across units).
func TestClauseStreamDecorrelated(t *testing.T) {
	seen := map[float64]bool{}
	for clause := 0; clause < 4; clause++ {
		for unit := 0; unit < 16; unit++ {
			v := clauseStream(7, clause, unit).Float64()
			if seen[v] {
				t.Fatalf("clause %d unit %d repeats an earlier stream", clause, unit)
			}
			seen[v] = true
		}
	}
}
