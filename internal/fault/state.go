package fault

import (
	"encoding/json"
	"fmt"
	"math"
)

// Checkpoint serialization of a Session. Only the *mutable* run state is
// captured: everything rebuilt deterministically each sweep (the active
// fault effects, rate scales, stuck masks) is NOT serialized — a resumed
// session recompiles its Timeline from the schedule and seed, then
// BeginSweep rebuilds the per-sweep arrays before any sample is drawn.
// Per-sample scratch (sampleSuspect, suspectReps, ...) is reset by
// BeginSample and never live at a sweep boundary, where checkpoints are
// taken.
//
// The blob is JSON inside the snapshot's checksummed section payload.
// Floats are stored as IEEE-754 bit patterns so the round-trip is
// word-exact rather than decimal-exact, matching the rng serializers.

// sessionStateVersion guards the section blob layout (the snapshot
// format version above it guards the container). v2 added the schedule
// sweep count to the geometry shape check.
const sessionStateVersion = 2

type repMonState struct {
	Samples     int    `json:"samples"`
	EwmaBits    uint64 `json:"ewma_bits"`
	EwmaN       int    `json:"ewma_n"`
	StallRun    int    `json:"stall_run"`
	ZeroRun     int    `json:"zero_run"`
	DarkSatRun  int    `json:"dark_sat_run"`
	CleanReads  int    `json:"clean_reads"`
	ReadbackBad bool   `json:"readback_bad"`
	Saturations uint64 `json:"saturations"`
	RemovedAt   int    `json:"removed_at"`
	Tripped     []bool `json:"tripped"`
}

type eventState struct {
	Sweep     int     `json:"sweep"`
	Replica   int     `json:"replica"`
	SuspectID Suspect `json:"suspect_id"`
	Measure   uint64  `json:"measure_bits"`
	Threshold uint64  `json:"threshold_bits"`
	Action    string  `json:"action,omitempty"`
}

type clearState struct {
	Sweep     int     `json:"sweep"`
	Replica   int     `json:"replica"`
	SuspectID Suspect `json:"suspect_id"`
}

type unitState struct {
	Slot          []int         `json:"slot"`
	Mons          []repMonState `json:"mons"`
	DrawSeq       uint64        `json:"draw_seq"`
	SparesUsed    int           `json:"spares_used"`
	QuarantinedAt int           `json:"quarantined_at"`
	FallbackAt    int           `json:"fallback_at"`
	UnitTripped   []bool        `json:"unit_tripped"`
	Events        []eventState  `json:"events"`
	Clears        []clearState  `json:"clears"`
	Resamples     uint64        `json:"resamples"`
	Rejects       uint64        `json:"rejects"`
	Remaps        int           `json:"remaps"`
}

type sessionState struct {
	Version   int         `json:"version"`
	Units     int         `json:"units"`
	Sweeps    int         `json:"sweeps"`
	Replicas  int         `json:"replicas"`
	Phys      int         `json:"phys"`
	LastSweep int         `json:"last_sweep"`
	UnitState []unitState `json:"unit_state"`
}

// MarshalBinary implements encoding.BinaryMarshaler: the session's
// mutable state, suitable for a checkpoint.Snapshot section. Must be
// called at a sweep boundary (no sample in flight).
func (s *Session) MarshalBinary() ([]byte, error) {
	st := sessionState{
		Version:   sessionStateVersion,
		Units:     s.tl.Units,
		Sweeps:    s.tl.Sweeps,
		Replicas:  s.tl.Replicas,
		Phys:      s.tl.Replicas + s.spares,
		LastSweep: s.lastSweep,
		UnitState: make([]unitState, len(s.units)),
	}
	for u := range s.units {
		uc := &s.units[u]
		us := &st.UnitState[u]
		us.Slot = append([]int(nil), uc.slot...)
		us.Mons = make([]repMonState, len(uc.mons))
		for r := range uc.mons {
			m := &uc.mons[r]
			us.Mons[r] = repMonState{
				Samples:     m.samples,
				EwmaBits:    math.Float64bits(m.ewma),
				EwmaN:       m.ewmaN,
				StallRun:    m.stallRun,
				ZeroRun:     m.zeroRun,
				DarkSatRun:  m.darkSatRun,
				CleanReads:  m.cleanReads,
				ReadbackBad: m.readbackBad,
				Saturations: m.saturations,
				RemovedAt:   m.removedAt,
				Tripped:     append([]bool(nil), m.tripped[:]...),
			}
		}
		us.DrawSeq = uc.drawSeq
		us.SparesUsed = uc.sparesUsed
		us.QuarantinedAt = uc.quarantinedAt
		us.FallbackAt = uc.fallbackAt
		us.UnitTripped = append([]bool(nil), uc.unitTripped[:]...)
		us.Events = make([]eventState, len(uc.events))
		for i, e := range uc.events {
			us.Events[i] = eventState{
				Sweep:     e.Sweep,
				Replica:   e.Replica,
				SuspectID: e.suspect,
				Measure:   math.Float64bits(e.Measure),
				Threshold: math.Float64bits(e.Threshold),
				Action:    e.Action,
			}
		}
		us.Clears = make([]clearState, len(uc.clears))
		for i, c := range uc.clears {
			us.Clears[i] = clearState{Sweep: c.sweep, Replica: c.replica, SuspectID: c.suspect}
		}
		us.Resamples = uc.resamples
		us.Rejects = uc.rejects
		us.Remaps = uc.remaps
	}
	return json.Marshal(st)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler onto a session
// freshly built by NewSession with the same schedule, seed, geometry,
// and policy options (the checkpoint fingerprint enforces that identity
// one layer up; the shape checks here catch what it cannot). After the
// restore the session behaves as if it had run every sweep up to
// LastSweep itself; the next BeginSweep call rebuilds the per-sweep
// fault effects.
func (s *Session) UnmarshalBinary(data []byte) error {
	var st sessionState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("fault: session state: %w", err)
	}
	if st.Version != sessionStateVersion {
		return fmt.Errorf("fault: session state version %d, want %d", st.Version, sessionStateVersion)
	}
	phys := s.tl.Replicas + s.spares
	switch {
	case st.Units != s.tl.Units || st.Replicas != s.tl.Replicas:
		return fmt.Errorf("fault: session state is %d units x %d replicas, session has %d x %d",
			st.Units, st.Replicas, s.tl.Units, s.tl.Replicas)
	case st.Sweeps != s.tl.Sweeps:
		return fmt.Errorf("fault: session state was compiled for %d sweeps, session schedule has %d",
			st.Sweeps, s.tl.Sweeps)
	case st.Phys != phys:
		return fmt.Errorf("fault: session state has %d physical replicas, session has %d", st.Phys, phys)
	case len(st.UnitState) != len(s.units):
		return fmt.Errorf("fault: session state carries %d units, session has %d", len(st.UnitState), len(s.units))
	}
	for u := range st.UnitState {
		us := &st.UnitState[u]
		if len(us.Slot) != s.tl.Replicas {
			return fmt.Errorf("fault: unit %d state has %d lane slots, want %d", u, len(us.Slot), s.tl.Replicas)
		}
		for l, p := range us.Slot {
			if p < 0 || p >= phys {
				return fmt.Errorf("fault: unit %d slot %d maps to replica %d outside [0,%d)", u, l, p, phys)
			}
		}
		if len(us.Mons) != phys {
			return fmt.Errorf("fault: unit %d state has %d monitors, want %d", u, len(us.Mons), phys)
		}
		for r := range us.Mons {
			if len(us.Mons[r].Tripped) != int(numSuspects) {
				return fmt.Errorf("fault: unit %d monitor %d has %d trip flags, want %d",
					u, r, len(us.Mons[r].Tripped), numSuspects)
			}
		}
		if len(us.UnitTripped) != int(numSuspects) {
			return fmt.Errorf("fault: unit %d has %d unit trip flags, want %d", u, len(us.UnitTripped), numSuspects)
		}
		for i, e := range us.Events {
			if e.SuspectID < 0 || e.SuspectID >= numSuspects {
				return fmt.Errorf("fault: unit %d event %d has suspect id %d outside [0,%d)", u, i, e.SuspectID, numSuspects)
			}
		}
		for i, c := range us.Clears {
			if c.SuspectID < 0 || c.SuspectID >= numSuspects {
				return fmt.Errorf("fault: unit %d clear %d has suspect id %d outside [0,%d)", u, i, c.SuspectID, numSuspects)
			}
		}
		if us.SparesUsed < 0 || us.SparesUsed > s.spares {
			return fmt.Errorf("fault: unit %d used %d spares, session has %d", u, us.SparesUsed, s.spares)
		}
	}

	// Shape verified; commit.
	s.lastSweep = st.LastSweep
	for u := range s.units {
		uc := &s.units[u]
		us := &st.UnitState[u]
		copy(uc.slot, us.Slot)
		for r := range uc.mons {
			ms := &us.Mons[r]
			m := &uc.mons[r]
			m.samples = ms.Samples
			m.ewma = math.Float64frombits(ms.EwmaBits)
			m.ewmaN = ms.EwmaN
			m.stallRun = ms.StallRun
			m.zeroRun = ms.ZeroRun
			m.darkSatRun = ms.DarkSatRun
			m.cleanReads = ms.CleanReads
			m.readbackBad = ms.ReadbackBad
			m.saturations = ms.Saturations
			m.removedAt = ms.RemovedAt
			copy(m.tripped[:], ms.Tripped)
		}
		uc.drawSeq = us.DrawSeq
		uc.sparesUsed = us.SparesUsed
		uc.quarantinedAt = us.QuarantinedAt
		uc.fallbackAt = us.FallbackAt
		copy(uc.unitTripped[:], us.UnitTripped)
		uc.events = make([]Event, len(us.Events))
		for i, e := range us.Events {
			uc.events[i] = Event{
				Sweep: e.Sweep, Unit: u, Replica: e.Replica,
				Suspect:   e.SuspectID.String(),
				Measure:   math.Float64frombits(e.Measure),
				Threshold: math.Float64frombits(e.Threshold),
				Action:    e.Action,
				suspect:   e.SuspectID,
			}
		}
		uc.clears = make([]clearRec, len(us.Clears))
		for i, c := range us.Clears {
			uc.clears[i] = clearRec{sweep: c.Sweep, replica: c.Replica, suspect: c.SuspectID}
		}
		uc.resamples = us.Resamples
		uc.rejects = us.Rejects
		uc.remaps = us.Remaps
		// Rebuild the per-sweep fault effects for the restored sweep so
		// the unit is coherent even before the next BeginSweep.
		uc.beginSweep(maxInt(st.LastSweep, 0))
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
