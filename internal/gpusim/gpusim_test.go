package gpusim

import "testing"

const launchThreads = 128 * 128 // saturates the machine: 512 warps over 384 resident slots

func runKernel(t testing.TB, k Kernel) Result {
	t.Helper()
	res, err := TitanXish().Run(k, launchThreads)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("non-positive cycles: %+v", res)
	}
	return res
}

func TestMachineValidate(t *testing.T) {
	if err := TitanXish().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TitanXish()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad machine accepted")
	}
	if _, err := TitanXish().Run(SegBaseline(5), 0); err == nil {
		t.Fatal("empty launch accepted")
	}
	if _, err := TitanXish().Run(nil, 10); err == nil {
		t.Fatal("nil kernel accepted")
	}
}

// TestDerivedSpeedupShape: with no fitted constants, the simulated
// machine must reproduce the paper's qualitative result set. The coarse
// model understates the real GPU's baseline inefficiencies (divergence,
// register pressure), so absolute ratios land below the paper's
// measured 3x/16x; the *ordering* and rough bands are the claim.
func TestDerivedSpeedupShape(t *testing.T) {
	segBase := runKernel(t, SegBaseline(5))
	segOpt := runKernel(t, SegOptimized(5))
	segRSU := runKernel(t, SegRSU(5, 11))
	motBase := runKernel(t, MotionBaseline(49))
	motRSU1 := runKernel(t, MotionRSU(49, 55))
	motRSU4 := runKernel(t, MotionRSU(49, 20))

	segSpeed := float64(segBase.Cycles) / float64(segRSU.Cycles)
	motSpeed1 := float64(motBase.Cycles) / float64(motRSU1.Cycles)
	motSpeed4 := float64(motBase.Cycles) / float64(motRSU4.Cycles)

	t.Logf("seg: base=%d opt=%d rsu=%d (%.2fx)", segBase.Cycles, segOpt.Cycles, segRSU.Cycles, segSpeed)
	t.Logf("motion: base=%d rsuG1=%d (%.2fx) rsuG4=%d (%.2fx)",
		motBase.Cycles, motRSU1.Cycles, motSpeed1, motRSU4.Cycles, motSpeed4)

	if segSpeed < 1.3 || segSpeed > 10 {
		t.Errorf("segmentation RSU speedup %.2f outside plausible band", segSpeed)
	}
	if motSpeed1 < 2 || motSpeed1 > 40 {
		t.Errorf("motion RSU-G1 speedup %.2f outside plausible band", motSpeed1)
	}
	// Motion (M=49) must gain more than segmentation (M=5).
	if motSpeed1 <= segSpeed {
		t.Errorf("motion speedup %.2f should exceed segmentation %.2f", motSpeed1, segSpeed)
	}
	// The optimized baseline trades 3 ALU/label for 1 load/label — a
	// ~10% issue-slot effect the paper measured as 1.2x but which sits
	// at this model's resolution: require it within 5% of baseline and
	// clearly slower than RSU.
	if ratio := float64(segOpt.Cycles) / float64(segBase.Cycles); ratio > 1.05 || ratio < 0.7 {
		t.Errorf("optimized seg %d implausible vs baseline %d", segOpt.Cycles, segBase.Cycles)
	}
	if segOpt.Cycles <= segRSU.Cycles {
		t.Errorf("optimized seg %d should be slower than RSU %d", segOpt.Cycles, segRSU.Cycles)
	}
	// G4's shorter evaluation latency cannot hurt beyond scheduling
	// noise (the launch is near the bandwidth/issue floor either way).
	if float64(motRSU4.Cycles) > float64(motRSU1.Cycles)*1.05 {
		t.Errorf("RSU-G4 (%d) notably slower than RSU-G1 (%d)", motRSU4.Cycles, motRSU1.Cycles)
	}
}

// TestBandwidthWall: shrinking the bandwidth budget must slow a
// memory-heavy kernel and eventually dominate its runtime.
func TestBandwidthWall(t *testing.T) {
	k := MotionRSU(49, 55)
	fast := TitanXish()
	slow := TitanXish()
	slow.BytesPerCycle = 8
	rFast, err := fast.Run(k, launchThreads)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := slow.Run(k, launchThreads)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Cycles <= rFast.Cycles {
		t.Fatalf("bandwidth cut did not slow the kernel: %d vs %d", rSlow.Cycles, rFast.Cycles)
	}
	if rSlow.BWStallCycles == 0 {
		t.Fatal("no bandwidth stalls recorded on the starved machine")
	}
	// At 8 B/cycle the kernel moves ~54*32 B/warp; the runtime must be
	// at least bytes/bandwidth.
	warps := int64((launchThreads + 31) / 32)
	minBytes := warps * int64(54*32)
	if rSlow.Cycles < minBytes/8 {
		t.Fatalf("starved runtime %d below the bandwidth floor %d", rSlow.Cycles, minBytes/8)
	}
}

// TestMoreSMsNeverSlower: doubling the SM count cannot hurt.
func TestMoreSMsNeverSlower(t *testing.T) {
	k := SegBaseline(5)
	small := TitanXish()
	big := TitanXish()
	big.SMs *= 2
	rSmall, err := small.Run(k, launchThreads)
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := big.Run(k, launchThreads)
	if err != nil {
		t.Fatal(err)
	}
	if rBig.Cycles > rSmall.Cycles {
		t.Fatalf("more SMs slower: %d vs %d", rBig.Cycles, rSmall.Cycles)
	}
}

// TestLatencyHiding: with many resident warps, memory latency should be
// substantially hidden — a latency-bound single-warp launch is far
// slower per warp than a full launch.
func TestLatencyHiding(t *testing.T) {
	k := SegBaseline(5)
	m := TitanXish()
	one, err := m.Run(k, 32) // a single warp
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Run(k, launchThreads)
	if err != nil {
		t.Fatal(err)
	}
	perWarpFull := float64(full.Cycles) / float64(full.Warps)
	if perWarpFull >= float64(one.Cycles) {
		t.Fatalf("no latency hiding: %.1f cycles/warp at full occupancy vs %d alone",
			perWarpFull, one.Cycles)
	}
}

func BenchmarkSimMotionBaseline(b *testing.B) {
	m := TitanXish()
	k := MotionBaseline(49)
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(k, launchThreads); err != nil {
			b.Fatal(err)
		}
	}
}
