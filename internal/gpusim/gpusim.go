// Package gpusim is a simplified SIMT (GPU) timing simulator used to
// validate the calibrated model in internal/arch from the bottom up.
//
// internal/arch fits per-kernel cycle costs to the paper's measured
// wall-clock numbers; this package goes the other way: it executes
// abstract per-pixel kernels — expressed as instruction streams — on a
// machine with warps, scoreboarded memory latency, a global bandwidth
// cap, special-function throughput and (optionally) RSU-G functional
// units, and *derives* relative performance with no fitted constants.
// The tests check that the derived speedups reproduce the paper's
// qualitative results: RSU-augmented kernels win, motion estimation
// (M=49) wins by much more than segmentation (M=5), and wider RSUs help
// exactly where the label count is large.
//
// The machine model is deliberately coarse (in-order warps, one issue
// per warp per cycle, no caches, per-cycle bandwidth budget); it is a
// shape checker, not a microarchitecture simulator.
package gpusim

import "fmt"

// OpKind classifies an abstract instruction.
type OpKind int

// Instruction kinds.
const (
	// ALU is a single-cycle arithmetic instruction.
	ALU OpKind = iota
	// SFU is a special-function op (exp, rsqrt): single issue but only
	// one SFU result per SFUThroughput cycles per warp.
	SFU
	// LDG is a global memory load: issues one request per cycle
	// (consuming Bytes of global bandwidth each); requests pipeline, and
	// the warp stalls MemLatency cycles after its last outstanding load
	// (the consumer waits for the data). This models the scoreboarded
	// memory-level parallelism real SMs have.
	LDG
	// STG is a global store: consumes bandwidth, no stall (write buffer).
	STG
	// RSUOp is an RSU control-register write (one cycle, §6.1).
	RSUOp
	// RSURead blocks the warp for the unit's evaluation latency.
	RSURead
)

// Op is one abstract instruction, repeated Count times.
type Op struct {
	Kind  OpKind
	Count int
	// Bytes per warp for LDG/STG (already aggregated across the 32
	// lanes: a coalesced 1-byte-per-lane load is 32, an uncoalesced
	// 32-byte-sector-per-lane load is 1024).
	Bytes int
	// Latency for RSURead (the unit's evaluation cycles).
	Latency int
}

// Kernel is the per-warp instruction stream (all 32 lanes in lockstep).
type Kernel []Op

// Machine describes the simulated GPU.
type Machine struct {
	SMs           int
	WarpsPerSM    int // resident warps per SM
	IssuePerSM    int // instructions issued per SM per cycle
	MemLatency    int // cycles from LDG issue to data
	BytesPerCycle int // global bandwidth budget per cycle (whole chip)
	SFUInterval   int // cycles between SFU issues per warp
}

// TitanXish returns a Titan-X-flavored machine: 24 SMs, 16 resident
// warps and dual issue per SM, 400-cycle memory, 336 B/cycle at 1 GHz.
func TitanXish() Machine {
	return Machine{
		SMs: 24, WarpsPerSM: 16, IssuePerSM: 2,
		MemLatency: 400, BytesPerCycle: 336, SFUInterval: 4,
	}
}

// Validate checks machine parameters.
func (m Machine) Validate() error {
	if m.SMs < 1 || m.WarpsPerSM < 1 || m.IssuePerSM < 1 || m.MemLatency < 1 ||
		m.BytesPerCycle < 1 || m.SFUInterval < 1 {
		return fmt.Errorf("gpusim: invalid machine %+v", m)
	}
	return nil
}

type warp struct {
	pc      int // index into flattened ops
	rep     int // repeats left of current op
	readyAt int64
	done    bool
	sfuAt   int64 // next cycle an SFU op may issue
}

// Result reports one kernel launch.
type Result struct {
	Cycles int64
	// Warps is the number of warps executed.
	Warps int
	// BWStallCycles counts issue slots lost to an exhausted bandwidth
	// budget (an indicator that the launch was memory-bound).
	BWStallCycles int64
}

// Run simulates `threads` threads of the kernel and returns the total
// cycle count. Threads are packed into warps of 32 and distributed
// round-robin over the SMs; each SM keeps at most WarpsPerSM resident,
// launching queued warps as residents finish.
func (m Machine) Run(k Kernel, threads int) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if threads < 1 || len(k) == 0 {
		return Result{}, fmt.Errorf("gpusim: empty launch")
	}
	totalWarps := (threads + 31) / 32
	res := Result{Warps: totalWarps}

	// Per-SM queues of warps still to launch.
	queued := make([]int, m.SMs)
	for w := 0; w < totalWarps; w++ {
		queued[w%m.SMs]++
	}
	resident := make([][]*warp, m.SMs)
	launch := func(sm int) {
		for queued[sm] > 0 && len(resident[sm]) < m.WarpsPerSM {
			queued[sm]--
			resident[sm] = append(resident[sm], &warp{rep: k[0].Count})
		}
	}
	for sm := range resident {
		launch(sm)
	}

	var cycle int64
	var bwDebt int64 // outstanding bytes beyond what the bus has drained
	alive := totalWarps
	for alive > 0 {
		if bwDebt > 0 {
			bwDebt -= int64(m.BytesPerCycle)
			if bwDebt < 0 {
				bwDebt = 0
			}
		}
		idle := true
		bwBlocked := false
		for sm := 0; sm < m.SMs; sm++ {
			issued := 0
			for _, w := range resident[sm] {
				if issued >= m.IssuePerSM {
					break
				}
				if w.done || w.readyAt > cycle {
					continue
				}
				op := k[w.pc]
				switch op.Kind {
				case SFU:
					if w.sfuAt > cycle {
						continue
					}
					w.sfuAt = cycle + int64(m.SFUInterval)
				case LDG, STG:
					// Token-bucket bandwidth: a new request may issue
					// while the backlog is under one cycle of drain.
					if bwDebt >= int64(m.BytesPerCycle) {
						res.BWStallCycles++
						bwBlocked = true
						continue
					}
					bwDebt += int64(op.Bytes)
					if op.Kind == LDG && w.rep == 1 {
						// Last load of the batch: the consumer waits for
						// the pipelined data to return.
						w.readyAt = cycle + int64(m.MemLatency)
					}
				case RSURead:
					w.readyAt = cycle + int64(op.Latency)
				}
				issued++
				idle = false
				// Advance the warp's instruction pointer.
				w.rep--
				if w.rep <= 0 {
					w.pc++
					if w.pc >= len(k) {
						w.done = true
						alive--
						continue
					}
					w.rep = k[w.pc].Count
				}
			}
			// Compact finished warps and launch queued ones.
			live := resident[sm][:0]
			for _, w := range resident[sm] {
				if !w.done {
					live = append(live, w)
				}
			}
			resident[sm] = live
			launch(sm)
		}
		if idle && !bwBlocked && alive > 0 {
			// Fast-forward to the earliest wake-up.
			var next int64 = 1 << 62
			for sm := range resident {
				for _, w := range resident[sm] {
					if !w.done && w.readyAt > cycle && w.readyAt < next {
						next = w.readyAt
					}
					if !w.done && w.sfuAt > cycle && w.sfuAt < next {
						next = w.sfuAt
					}
				}
			}
			if next == 1<<62 {
				return res, fmt.Errorf("gpusim: deadlock at cycle %d", cycle)
			}
			cycle = next
			continue
		}
		cycle++
	}
	res.Cycles = cycle
	return res, nil
}
