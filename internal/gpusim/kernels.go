package gpusim

// First-principles instruction streams for the paper's four
// implementations (§8.1), one thread per pixel per MCMC color phase.
// Byte counts are per warp (32 lanes); label and pixel accesses are
// coalesced (adjacent threads touch adjacent addresses).
//
// These are derived from the algorithm, not fitted: a doubleton is a
// subtract/multiply/accumulate per neighbor, a Boltzmann weight is one
// special-function exp, the software sampler is an RNG draw plus a
// cumulative scan, and the RSU versions replace all per-label math with
// §6.1 control-register traffic plus the unit's evaluation latency.

const (
	doubletonALU = 3  // sub, mul, acc — per neighbor
	singletonALU = 3  // sub, mul, acc
	rngALU       = 10 // xorshift + float conversion
	scanALU      = 3  // acc, cmp, select — per label
	packALU      = 6  // pack neighbor labels + addresses
)

// SegBaseline is standard-MCMC image segmentation: M labels, per-label
// energy + exp, then a categorical scan. Neighbor labels and the pixel
// are one coalesced byte per lane each.
func SegBaseline(m int) Kernel {
	return Kernel{
		{Kind: LDG, Count: 5, Bytes: 32},                            // pixel + 4 neighbor labels
		{Kind: ALU, Count: m * (4*doubletonALU + singletonALU + 2)}, // energies
		{Kind: SFU, Count: m},                                       // exp per label
		{Kind: ALU, Count: rngALU + m*scanALU},                      // sample
		{Kind: STG, Count: 1, Bytes: 32},                            // new label
	}
}

// SegOptimized precomputes singletons: the per-label singleton math is
// replaced by one extra coalesced load per label, batched with the
// operand loads (all addresses are known up front, so the compiler
// hoists them into one pipelined group).
func SegOptimized(m int) Kernel {
	return Kernel{
		{Kind: LDG, Count: 5 + m, Bytes: 32},         // operands + precomputed singletons
		{Kind: ALU, Count: m * (4*doubletonALU + 2)}, // doubletons only
		{Kind: SFU, Count: m},
		{Kind: ALU, Count: rngALU + m*scanALU},
		{Kind: STG, Count: 1, Bytes: 32},
	}
}

// SegRSU offloads the per-label work to an RSU-G: operand loads, three
// control writes, one blocking read (§6.1).
func SegRSU(m int, rsuLatency int) Kernel {
	return Kernel{
		{Kind: LDG, Count: 5, Bytes: 32},
		{Kind: ALU, Count: packALU},
		{Kind: RSUOp, Count: 3},
		{Kind: RSURead, Count: 1, Latency: rsuLatency},
		{Kind: STG, Count: 1, Bytes: 32},
	}
}

// MotionBaseline is dense motion estimation: per label one candidate
// load from the target frame plus the energy/exp math, then the scan.
func MotionBaseline(m int) Kernel {
	return Kernel{
		{Kind: LDG, Count: 5, Bytes: 32},
		{Kind: LDG, Count: m, Bytes: 32},                            // candidate pixels
		{Kind: ALU, Count: m * (4*doubletonALU + singletonALU + 2)}, // energies
		{Kind: SFU, Count: m},
		{Kind: ALU, Count: rngALU + m*scanALU},
		{Kind: STG, Count: 1, Bytes: 32},
	}
}

// MotionRSU streams the M candidate pixels into the unit's singleton-D
// register (§6) and blocks on the evaluation.
func MotionRSU(m int, rsuLatency int) Kernel {
	return Kernel{
		{Kind: LDG, Count: 5, Bytes: 32},
		{Kind: ALU, Count: packALU},
		{Kind: RSUOp, Count: 2},
		{Kind: LDG, Count: m, Bytes: 32}, // candidate pixels
		{Kind: RSUOp, Count: m},          // streamed singleton-D writes
		{Kind: RSURead, Count: 1, Latency: rsuLatency},
		{Kind: STG, Count: 1, Bytes: 32},
	}
}
