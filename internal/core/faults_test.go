package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/rng"
)

// faultTestApp builds the small segmentation instance shared by the
// fault-path tests.
func faultTestApp(t *testing.T) (apps.App, img.Scene) {
	t.Helper()
	scene := img.BlobScene(32, 32, 3, 6, rng.New(41))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	return app, scene
}

func faultConfig(policy fault.Policy, schedule string, workers int) Config {
	return Config{
		Backend:    RSU,
		Iterations: 24,
		BurnIn:     8,
		Workers:    workers,
		Seed:       5,
		Faults: &fault.Options{
			Schedule: schedule,
			Seed:     99,
			Policy:   policy,
		},
	}
}

// TestFaultPathHealthyMatchesPlain: with an empty fault schedule and
// untripped monitors the fault-threaded sampler must draw exactly the
// same RNG stream as the plain RSU path — byte-identical labelings.
func TestFaultPathHealthyMatchesPlain(t *testing.T) {
	app, _ := faultTestApp(t)

	plain, err := NewSolver(app, Config{Backend: RSU, Iterations: 24, BurnIn: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pRes, err := plain.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faulty, err := NewSolver(app, faultConfig(fault.PolicyRemap, "", 1))
	if err != nil {
		t.Fatal(err)
	}
	fRes, err := faulty.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if !labelsEqual(pRes.Final, fRes.Final) {
		t.Error("fault-free fault path diverged from the plain RSU path")
	}
	if a := fRes.FaultAudit; a == nil {
		t.Fatal("no audit attached")
	} else if a.Summary.Injected != 0 || a.Summary.Events != 0 {
		t.Errorf("fault-free run reported injected=%d events=%d", a.Summary.Injected, a.Summary.Events)
	}
}

// TestFaultDeterminism: for every policy, a fixed seed and schedule
// must give byte-identical labelings and audits across repeat runs AND
// across worker counts (the acceptance criterion).
func TestFaultDeterminism(t *testing.T) {
	app, _ := faultTestApp(t)
	const schedule = "dead:unit=3,sweep=2;hot:rate=2e-3,storm=6;stuck:unit=10,sweep=5,bit=3,val=0;wearout:unit=7,sweep=1,accel=0.4;wrap:unit=20,sweep=6,dur=4"

	for _, policy := range []fault.Policy{
		fault.PolicyNone, fault.PolicyRemap, fault.PolicyResample,
		fault.PolicyQuarantine, fault.PolicyFallback,
	} {
		t.Run(policy.String(), func(t *testing.T) {
			var ref *Result
			var refAudit []byte
			for _, workers := range []int{1, 1, 3, 7} {
				solver, err := NewSolver(app, faultConfig(policy, schedule, workers))
				if err != nil {
					t.Fatal(err)
				}
				res, err := solver.Solve(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if res.FaultAudit == nil {
					t.Fatal("no audit attached")
				}
				var buf bytes.Buffer
				if err := res.FaultAudit.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref, refAudit = res, buf.Bytes()
					if res.FaultAudit.Summary.Injected == 0 {
						t.Fatal("schedule injected nothing")
					}
					continue
				}
				if !labelsEqual(ref.Final, res.Final) || !labelsEqual(ref.MAP, res.MAP) {
					t.Errorf("workers=%d: labeling differs from reference", workers)
				}
				if !bytes.Equal(refAudit, buf.Bytes()) {
					t.Errorf("workers=%d: audit JSON differs from reference", workers)
				}
			}
		})
	}
}

// TestFaultAuditAccountsEveryInjection: for a deterministic schedule
// every injected fault must land in a non-escape bucket — detected,
// masked by an already-degraded path, or armed too late for its
// monitor's latency budget. Unaccounted == 0 is the acceptance
// criterion's "injected == detected+quarantined" audit invariant.
func TestFaultAuditAccountsEveryInjection(t *testing.T) {
	app, _ := faultTestApp(t)
	const schedule = "dead:unit=3,sweep=2;dead:unit=4,sweep=3;stuck:unit=10,sweep=5,bit=3,val=0;wrap:unit=20,sweep=6,dur=6;hot:unit=12,sweep=4,dur=8,storm=8"

	for _, policy := range []fault.Policy{
		fault.PolicyNone, fault.PolicyRemap, fault.PolicyResample,
		fault.PolicyQuarantine, fault.PolicyFallback,
	} {
		t.Run(policy.String(), func(t *testing.T) {
			solver, err := NewSolver(app, faultConfig(policy, schedule, 2))
			if err != nil {
				t.Fatal(err)
			}
			res, err := solver.Solve(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			sum := res.FaultAudit.Summary
			if sum.Injected != 5 {
				t.Fatalf("injected = %d, want 5", sum.Injected)
			}
			if sum.Unaccounted != 0 {
				t.Errorf("unaccounted = %d, want 0 (summary %+v)", sum.Unaccounted, sum)
			}
			if sum.Detected+sum.Masked+sum.Late != sum.Injected {
				t.Errorf("detected %d + masked %d + late %d != injected %d",
					sum.Detected, sum.Masked, sum.Late, sum.Injected)
			}
			if sum.Detected == 0 {
				t.Error("nothing detected at all")
			}
		})
	}
}

// TestFaultPolicyEffects: the policies must actually engage — remap
// consumes spares, quarantine freezes units, fallback reroutes them.
func TestFaultPolicyEffects(t *testing.T) {
	app, _ := faultTestApp(t)
	const schedule = "dead:unit=3,sweep=2;dead:unit=9,sweep=4"

	run := func(p fault.Policy) fault.Summary {
		t.Helper()
		solver, err := NewSolver(app, faultConfig(p, schedule, 1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.FaultAudit.Summary
	}

	if s := run(fault.PolicyRemap); s.Remaps == 0 {
		t.Errorf("remap policy performed no remaps: %+v", s)
	}
	if s := run(fault.PolicyQuarantine); s.QuarantinedUnits == 0 {
		t.Errorf("quarantine policy froze no units: %+v", s)
	}
	if s := run(fault.PolicyFallback); s.FallbackUnits == 0 {
		t.Errorf("fallback policy rerouted no units: %+v", s)
	}
	if s := run(fault.PolicyResample); s.Resamples == 0 {
		t.Errorf("resample policy redrew nothing: %+v", s)
	}
	if s := run(fault.PolicyNone); s.Remaps != 0 || s.QuarantinedUnits != 0 || s.FallbackUnits != 0 {
		t.Errorf("none policy degraded something: %+v", s)
	}
}

// TestFaultsRejectNonRSUBackend: the fault model lives in the RSU
// hardware; software backends must refuse it loudly.
func TestFaultsRejectNonRSUBackend(t *testing.T) {
	app, _ := faultTestApp(t)
	cfg := faultConfig(fault.PolicyRemap, "dead:unit=0", 1)
	cfg.Backend = SoftwareGibbs
	if _, err := NewSolver(app, cfg); err == nil {
		t.Error("software backend accepted fault options")
	}

	bad := faultConfig(fault.PolicyRemap, "dead:unit=?", 1)
	if _, err := NewSolver(app, bad); err == nil {
		t.Error("malformed schedule accepted")
	}
}

func labelsEqual(a, b *img.LabelMap) bool {
	if a == nil || b == nil || a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	return true
}
