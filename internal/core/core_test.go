package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/arch"
	"repro/internal/img"
	"repro/internal/rng"
	"repro/internal/rsu"
)

func segApp(t testing.TB) (*apps.Segmentation, img.Scene) {
	t.Helper()
	scene := img.BlobScene(24, 24, 4, 6, rng.New(1))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	return app, scene
}

func TestNewSolverValidation(t *testing.T) {
	app, _ := segApp(t)
	cases := []Config{
		{Iterations: 0},
		{Iterations: 10, BurnIn: -1},
		{Iterations: 10, BurnIn: 10},
	}
	for _, cfg := range cases {
		if _, err := NewSolver(app, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewSolver(nil, Config{Iterations: 1}); err == nil {
		t.Error("nil app accepted")
	}
}

func TestSolverBackends(t *testing.T) {
	app, scene := segApp(t)
	for _, backend := range []Backend{SoftwareGibbs, SoftwareFirstToFire, Metropolis, RSU} {
		s, err := NewSolver(app, Config{
			Backend: backend, Iterations: 40, BurnIn: 15, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if (s.Unit() != nil) != (backend == RSU) {
			t.Errorf("%v: unexpected unit presence", backend)
		}
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if res.MAP == nil || len(res.EnergyTrace) != 40 {
			t.Fatalf("%v: incomplete result", backend)
		}
		// Metropolis mixes slower; grant it a looser bound.
		limit := 0.10
		if backend == Metropolis {
			limit = 0.25
		}
		if rate := res.MAP.MislabelRate(scene.Truth); rate > limit {
			t.Errorf("%v: mislabel rate %v", backend, rate)
		}
	}
}

func TestSolverRSUWidth(t *testing.T) {
	app, _ := segApp(t)
	s, err := NewSolver(app, Config{Backend: RSU, RSUWidth: 4, Iterations: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Unit().Config().Width; got != 4 {
		t.Fatalf("unit width %d", got)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplerName != "rsu-g4-ideal" {
		t.Fatalf("sampler name %q", res.SamplerName)
	}
}

func TestPerformanceReport(t *testing.T) {
	rep, err := Performance(arch.Segmentation(arch.HDW, arch.HDH))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUSeconds <= rep.RSUG1Seconds {
		t.Error("GPU should be slower than RSU-G1")
	}
	if rep.RSUG1Seconds < rep.AccelSeconds {
		t.Error("accelerator bound should be the fastest")
	}
	if rep.AcceleratorUnit != 336 {
		t.Errorf("units %d", rep.AcceleratorUnit)
	}
	if rep.UnitPowerMW != 3.91 {
		t.Errorf("unit power %v", rep.UnitPowerMW)
	}
}

func TestPerformanceUnknownWorkload(t *testing.T) {
	if _, err := Performance(arch.Stereo(320, 320)); err == nil {
		t.Fatal("uncalibrated workload accepted")
	}
	bad := arch.Segmentation(320, 320)
	bad.Labels = 0
	if _, err := Performance(bad); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestBackendString(t *testing.T) {
	names := map[Backend]string{
		SoftwareGibbs:       "software-gibbs",
		SoftwareFirstToFire: "software-first-to-fire",
		Metropolis:          "metropolis",
		RSU:                 "rsu",
		Backend(9):          "Backend(9)",
	}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("%v != %s", b, want)
		}
	}
}

func TestSolveUnknownBackend(t *testing.T) {
	app, _ := segApp(t)
	_, err := NewSolver(app, Config{Backend: Backend(9), Iterations: 2})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("error %v does not wrap ErrInvalidConfig", err)
	}
}

func TestSolverAnnealing(t *testing.T) {
	app, scene := segApp(t)
	s, err := NewSolver(app, Config{
		Backend: SoftwareGibbs, Iterations: 40, BurnIn: 20, Seed: 9,
		Anneal: &AnnealSpec{StartT: 60, Rate: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.MAP.MislabelRate(scene.Truth); rate > 0.10 {
		t.Fatalf("annealed mislabel rate %v", rate)
	}
	// Energy should fall as the chain cools.
	first, last := res.EnergyTrace[0], res.EnergyTrace[len(res.EnergyTrace)-1]
	if last >= first {
		t.Fatalf("annealed energy did not fall: %v -> %v", first, last)
	}
	// Model temperature must be restored after the run.
	if app.Model().T != 12 {
		t.Fatalf("model temperature %v after annealing", app.Model().T)
	}
}

func TestSolverAnnealValidation(t *testing.T) {
	app, _ := segApp(t)
	for _, spec := range []AnnealSpec{{0, 0.9}, {10, 0}, {10, 1}} {
		spec := spec
		if _, err := NewSolver(app, Config{Iterations: 5, Anneal: &spec}); err == nil {
			t.Errorf("anneal spec %+v accepted", spec)
		}
	}
}

// TestSolverPhysicalMode runs the full photon-level RET simulation end
// to end on a small scene.
func TestSolverPhysicalMode(t *testing.T) {
	app, scene := segApp(t)
	s, err := NewSolver(app, Config{
		Backend: RSU, RSUMode: rsu.Physical,
		Iterations: 30, BurnIn: 10, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplerName != "rsu-g1-physical" {
		t.Fatalf("sampler %q", res.SamplerName)
	}
	if rate := res.MAP.MislabelRate(scene.Truth); rate > 0.12 {
		t.Fatalf("physical-mode mislabel rate %v", rate)
	}
}

// TestPrototypeBackend: the §7 bench as a solver backend, restricted to
// two-label models.
func TestPrototypeBackend(t *testing.T) {
	scene := img.TwoRegionScene(40, 40, 10, rng.New(20))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(app, Config{Backend: Prototype, Iterations: 12, BurnIn: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplerName != "prototype-rsu-g2" {
		t.Fatalf("sampler %q", res.SamplerName)
	}
	if rate := res.MAP.MislabelRate(scene.Truth); rate > 0.06 {
		t.Fatalf("prototype backend mislabel rate %v", rate)
	}
	// Five-label models are rejected up front.
	multi, _ := segApp(t)
	if _, err := NewSolver(multi, Config{Backend: Prototype, Iterations: 5}); err == nil {
		t.Fatal("five-label model accepted by prototype backend")
	}
}
