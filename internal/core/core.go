// Package core is the top of the reproduction stack: a single Solver
// API that runs MRF-MCMC inference for any of the paper's applications
// on a selectable backend — exact software Gibbs, ideal first-to-fire,
// Metropolis, or an emulated RSU-G unit of any width — and reports both
// the inference result and the modeled hardware performance
// (GPU/accelerator times, power, area) for the equivalent workload.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/ret"
	"repro/internal/rsu"
	"repro/internal/sampler"
	"repro/internal/sampler/meanfield"
	"repro/internal/sampler/spiking"
)

// Backend selects the sampling engine by registry index
// (internal/sampler). The named constants below cover the original
// enum; every registered backend — including ones added after these
// constants froze — is addressable by name through Config.BackendName,
// which is the preferred selector.
type Backend int

// Compatibility aliases for the first five registry entries.
//
// Deprecated: the registry (internal/sampler) is the source of truth
// for available backends; select by name with Config.BackendName /
// WithBackendName, and enumerate with Backends(). These constants
// remain valid forever — they resolve to the same registry entries by
// index — but new backends get no constant.
const (
	// SoftwareGibbs is the exact softmax Gibbs kernel (the paper's
	// software baseline).
	SoftwareGibbs Backend = iota
	// SoftwareFirstToFire is the unquantized first-to-fire race —
	// mathematically identical to SoftwareGibbs, the RSU's principle
	// without its hardware approximations.
	SoftwareFirstToFire
	// Metropolis is the uniform-proposal MH kernel.
	Metropolis
	// RSU emulates an RSU-G unit (width set by Config.RSUWidth).
	RSU
	// Prototype drives the emulated macro-scale RSU-G2 bench (§7).
	// Restricted to two-label models (a declared registry capability).
	Prototype
)

// String implements fmt.Stringer: the registered name of the backend
// at this index, so String()/ParseBackend round-trip exactly.
func (b Backend) String() string {
	if be, ok := sampler.At(int(b)); ok {
		return be.Name()
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend resolves a registered backend name to its Backend
// value — the inverse of String. Unknown names wrap ErrInvalidConfig.
func ParseBackend(name string) (Backend, error) {
	i, ok := sampler.Index(name)
	if !ok {
		return 0, fmt.Errorf("%w: unknown backend %q (known: %s)",
			ErrInvalidConfig, name, strings.Join(sampler.Names(), ", "))
	}
	return Backend(i), nil
}

// Backends returns the registered backend names in registry order —
// the single source of allowed-values help text for CLI flags.
func Backends() []string { return sampler.Names() }

// Config selects the backend and chain parameters.
type Config struct {
	// Backend selects the sampling engine by registry index. Ignored
	// when BackendName is set.
	Backend Backend
	// BackendName selects the sampling engine by registry name
	// (see Backends()); when non-empty it takes precedence over
	// Backend. Unknown names fail Validate with ErrInvalidConfig.
	BackendName string
	Iterations  int
	BurnIn      int
	// Workers sets checkerboard parallelism (defaults to 1). Seeded
	// results are identical for every worker count.
	Workers int
	// Compile enables the precomputed-potential fast path: the model's
	// unary energy table (W*H*M float64s) and doubleton tables are
	// materialized once before the chain runs, removing every closure
	// call from the sweep inner loop. Sampled labels are bit-identical
	// to the uncompiled path; the only cost is table memory.
	Compile bool
	// RSUWidth is the unit width K for the RSU backend (default 1).
	RSUWidth int
	// RSUMode selects ideal or photon-level RET simulation.
	RSUMode rsu.SamplingMode
	// Circuit optionally overrides the RET circuit design for the RSU
	// backend (nil: high-dynamic-range ladder).
	Circuit *ret.Circuit
	// Seed makes runs reproducible.
	Seed uint64
	// Anneal optionally enables simulated-annealing cooling: the chain
	// temperature starts at StartT, decays geometrically by Rate per
	// iteration, and floors at the model temperature. Sharper MAP
	// estimates for hard energy landscapes.
	Anneal *AnnealSpec
	// Spiking tunes the spiking backend's comparator width and tick
	// length (nil: package defaults). Other backends ignore it.
	Spiking *spiking.Spec
	// MeanField tunes the meanfield backend's damping and fixed-point
	// tolerance (nil: package defaults). Other backends ignore it.
	MeanField *meanfield.Spec
	// Faults optionally arms the fault-injection and degradation
	// subsystem (internal/fault): the schedule is compiled over the
	// image geometry (fault unit = image row), online monitors watch
	// every TTF measurement, and the selected policy degrades around
	// detected faults. Solve's Result then carries the
	// injected-vs-detected audit. Only backends whose registry
	// capabilities declare fault support (the rsu hardware emulation)
	// accept it.
	Faults *fault.Options
	// Checkpoint optionally arms durable snapshots and crash recovery
	// (internal/checkpoint). Nil disables checkpointing.
	Checkpoint *CheckpointSpec
	// Recorder optionally injects the observability layer (internal/obs):
	// sweep and color-phase timings, checkpoint and fault events, backend
	// counters. Nil (the default) records nothing and costs nothing.
	// Recording never touches the RNG streams, so an observed run
	// produces byte-identical labels to an unobserved one; the field is
	// likewise excluded from checkpoint fingerprints.
	Recorder obs.Recorder
	// Deadline bounds the wall time of one Solve call (0: none). On
	// expiry the chain stops at the next sweep boundary exactly as an
	// external context deadline would: a final checkpoint is written
	// when armed, and Solve returns the partial Result together with an
	// error wrapping context.DeadlineExceeded. Like Workers, Deadline is
	// deliberately excluded from checkpoint fingerprints — it truncates
	// the chain but never changes any sampled label, so a snapshot taken
	// under one deadline resumes bit-exactly under another.
	Deadline time.Duration
}

// Config limit bounds. Validate rejects values beyond these: they are
// far past any real workload, so exceeding one always indicates a
// corrupted or hostile configuration (a serving daemon must refuse it
// at admission, not discover it mid-solve).
const (
	// MaxDeadline bounds Config.Deadline.
	MaxDeadline = 30 * 24 * time.Hour
	// MaxIterations bounds Config.Iterations.
	MaxIterations = 1 << 30
	// MaxWorkers bounds Config.Workers.
	MaxWorkers = 4096
)

// CheckpointSpec wires the checkpoint subsystem into a solve: periodic
// durable snapshots at sweep boundaries, and resume from the last one.
type CheckpointSpec struct {
	// Path is the snapshot file. Each checkpoint atomically replaces it
	// (temp file + rename), so a crash at any instant leaves either the
	// previous or the new complete snapshot, never a torn one.
	Path string
	// EverySweeps checkpoints after every Nth completed sweep
	// (0 disables count-based checkpointing).
	EverySweeps int
	// Every checkpoints when this much wall time has elapsed, evaluated
	// at sweep boundaries. Requires Now (CLI entry points pass
	// time.Now; library code must not read the wall clock itself).
	Every time.Duration
	// Now supplies the wall clock for Every.
	Now func() time.Time
	// Resume loads Path before the run (if it exists) and continues
	// from the captured sweep. The snapshot's fingerprint must match
	// the configuration; a missing file starts from scratch.
	Resume bool
	// OnSave, when non-nil, is invoked after each snapshot is durably
	// written to Path, with the sweep number the snapshot captured.
	// Serving layers hook replication here; the callback runs on the
	// solve goroutine, so it must not block on slow work.
	OnSave func(sweep int)
}

// ErrInvalidConfig is wrapped by every configuration-validation error
// NewSolver and Config.Validate return; callers branch on it with
// errors.Is.
var ErrInvalidConfig = errors.New("core: invalid config")

// resolveBackend looks up the configured backend in the registry:
// BackendName when set, the Backend index otherwise.
func (cfg Config) resolveBackend() (sampler.Backend, error) {
	if cfg.BackendName != "" {
		be, ok := sampler.Lookup(cfg.BackendName)
		if !ok {
			return nil, fmt.Errorf("%w: unknown backend %q (known: %s)",
				ErrInvalidConfig, cfg.BackendName, strings.Join(sampler.Names(), ", "))
		}
		return be, nil
	}
	be, ok := sampler.At(int(cfg.Backend))
	if !ok {
		return nil, fmt.Errorf("%w: unknown backend %v", ErrInvalidConfig, cfg.Backend)
	}
	return be, nil
}

// Validate checks every user-facing Config field, returning an error
// wrapping ErrInvalidConfig that names the offending field. App-
// dependent checks (label-space compatibility, RSU unit construction)
// happen in NewSolver, which calls Validate first.
func (cfg Config) Validate() error {
	be, err := cfg.resolveBackend()
	if err != nil {
		return err
	}
	caps := be.Caps()
	if cfg.Iterations <= 0 {
		return fmt.Errorf("%w: iterations must be positive, got %d", ErrInvalidConfig, cfg.Iterations)
	}
	if cfg.Iterations > MaxIterations {
		return fmt.Errorf("%w: iterations %d > limit %d", ErrInvalidConfig, cfg.Iterations, MaxIterations)
	}
	if cfg.BurnIn < 0 || cfg.BurnIn >= cfg.Iterations {
		return fmt.Errorf("%w: burn-in %d outside [0,%d)", ErrInvalidConfig, cfg.BurnIn, cfg.Iterations)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("%w: workers %d < 0", ErrInvalidConfig, cfg.Workers)
	}
	if cfg.Workers > MaxWorkers {
		return fmt.Errorf("%w: workers %d > limit %d", ErrInvalidConfig, cfg.Workers, MaxWorkers)
	}
	if cfg.Deadline < 0 {
		return fmt.Errorf("%w: deadline %v < 0", ErrInvalidConfig, cfg.Deadline)
	}
	if cfg.Deadline > MaxDeadline {
		return fmt.Errorf("%w: deadline %v > limit %v", ErrInvalidConfig, cfg.Deadline, MaxDeadline)
	}
	if cfg.RSUWidth < 0 {
		return fmt.Errorf("%w: RSU width %d < 0", ErrInvalidConfig, cfg.RSUWidth)
	}
	if a := cfg.Anneal; a != nil && (a.StartT <= 0 || a.Rate <= 0 || a.Rate >= 1) {
		return fmt.Errorf("%w: anneal spec %+v (want StartT > 0 and Rate in (0,1))", ErrInvalidConfig, *a)
	}
	if sp := cfg.Spiking; sp != nil {
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if mf := cfg.MeanField; mf != nil {
		if err := mf.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if f := cfg.Faults; f != nil {
		if !caps.Faults {
			return fmt.Errorf("%w: fault injection models RSU hardware; backend %s does not support it",
				ErrInvalidConfig, be.Name())
		}
		if _, err := fault.Parse(f.Schedule); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if ck := cfg.Checkpoint; ck != nil {
		if !caps.Checkpoint {
			return fmt.Errorf("%w: backend %s keeps state outside the snapshot format and cannot checkpoint/resume",
				ErrInvalidConfig, be.Name())
		}
		if ck.Path == "" {
			return fmt.Errorf("%w: checkpoint spec needs a Path", ErrInvalidConfig)
		}
		if ck.EverySweeps < 0 {
			return fmt.Errorf("%w: checkpoint EverySweeps %d < 0", ErrInvalidConfig, ck.EverySweeps)
		}
		if ck.Every < 0 {
			return fmt.Errorf("%w: checkpoint Every %v < 0", ErrInvalidConfig, ck.Every)
		}
		if ck.Every > 0 && ck.Now == nil {
			return fmt.Errorf("%w: checkpoint Every needs a Now clock", ErrInvalidConfig)
		}
	}
	return nil
}

// AnnealSpec parameterizes geometric simulated-annealing cooling.
type AnnealSpec struct {
	// StartT is the initial temperature (in model energy units).
	StartT float64
	// Rate is the per-iteration multiplier in (0, 1).
	Rate float64
}

// Solver runs inference for one application instance.
type Solver struct {
	app     apps.App
	cfg     Config
	backend string // resolved registry name
	caps    sampler.Capabilities
	inst    sampler.Instance
}

// NewSolver validates the configuration against the selected backend's
// registry capabilities and constructs the backend instance.
func NewSolver(app apps.App, cfg Config) (*Solver, error) {
	if app == nil {
		return nil, fmt.Errorf("%w: nil application", ErrInvalidConfig)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	be, err := cfg.resolveBackend()
	if err != nil {
		return nil, err
	}
	caps := be.Caps()
	if m := app.Model().M; (caps.MinLabels > 0 && m < caps.MinLabels) ||
		(caps.MaxLabels > 0 && m > caps.MaxLabels) {
		return nil, fmt.Errorf("%w: backend %s supports %d..%d labels, model has %d",
			ErrInvalidConfig, be.Name(), caps.MinLabels, caps.MaxLabels, m)
	}
	inst, err := be.New(sampler.BuildSpec{
		App:       app,
		RSUWidth:  cfg.RSUWidth,
		RSUMode:   cfg.RSUMode,
		Circuit:   cfg.Circuit,
		Spiking:   cfg.Spiking,
		MeanField: cfg.MeanField,
	})
	if err != nil {
		return nil, err
	}
	return &Solver{app: app, cfg: cfg, backend: be.Name(), caps: caps, inst: inst}, nil
}

// Unit returns the RSU unit (nil for software backends).
func (s *Solver) Unit() *rsu.Unit { return s.inst.Unit() }

// BackendName returns the resolved registry name of the solver's
// backend.
func (s *Solver) BackendName() string { return s.backend }

// Capabilities returns the registry capability descriptor of the
// solver's backend.
func (s *Solver) Capabilities() sampler.Capabilities { return s.caps }

// Result is the outcome of a Solve call.
type Result struct {
	// MAP is the marginal-MAP estimate (per-site mode of post-burn-in
	// samples).
	MAP *img.LabelMap
	// Final is the last chain state.
	Final *img.LabelMap
	// Confidence is the per-site agreement with the MAP label (0..255).
	Confidence *img.Gray
	// EnergyTrace records the total energy each iteration.
	EnergyTrace []float64
	// SamplerName identifies the kernel that ran.
	SamplerName string
	// Iterations is the number of sweeps actually performed — equal to
	// Config.Iterations for a completed run, fewer when cancellation
	// stopped the chain early.
	Iterations int
	// FaultAudit reconciles injected against detected faults (nil
	// unless Config.Faults armed the fault subsystem).
	FaultAudit *fault.Audit
	// Metrics is a point-in-time snapshot of the injected recorder taken
	// as the solve returns (nil unless Config.Recorder implements
	// obs.Snapshotter — obs.Registry does).
	Metrics *obs.Snapshot
}

// Fingerprint returns the configuration identity stamped into this
// solver's checkpoints: two runs whose fingerprints match draw the
// exact same chain, so resuming one from the other's snapshot is
// sound. Workers is deliberately absent — RNG streams are attached to
// rows, so a snapshot taken at W=8 resumes bit-identically at W=1.
func (s *Solver) Fingerprint() checkpoint.Fingerprint {
	f := checkpoint.Fingerprint{
		App:        s.app.Name(),
		Backend:    s.backend,
		Seed:       s.cfg.Seed,
		Iterations: s.cfg.Iterations,
		BurnIn:     s.cfg.BurnIn,
		Compile:    s.cfg.Compile,
	}
	if a := s.cfg.Anneal; a != nil {
		f.AnnealStartT = a.StartT
		f.AnnealRate = a.Rate
	}
	f.Tag = s.inst.Tag()
	if fo := s.cfg.Faults; fo != nil {
		f.Tag += fmt.Sprintf(";faults=%q,seed=%d,policy=%v,spares=%d,maxresamples=%d",
			fo.Schedule, fo.Seed, fo.Policy, fo.Spares, fo.MaxResamples)
		if fo.Monitor != nil {
			f.Tag += fmt.Sprintf(",mon=%+v", *fo.Monitor)
		}
	}
	return f
}

// Solve runs the chain from the application's data-driven initial
// labeling, with cooperative cancellation and (when Config.Checkpoint
// is set) durable snapshots and resume. Cancellation is honored at
// sweep boundaries: on ctx cancel or deadline, a final checkpoint is
// written (if armed), and Solve returns the *partial* Result computed
// so far together with an error wrapping ctx.Err().
func (s *Solver) Solve(ctx context.Context) (*Result, error) {
	if d := s.cfg.Deadline; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	m := s.app.Model()
	if s.cfg.Compile && !m.Compiled() {
		// An already-compiled model is reused as-is: tables depend only
		// on the model parameters, and table evaluation is bit-identical
		// to the closure path, so recompiling could only waste work.
		// This is what lets a serving layer share one compiled model
		// across many sequential jobs (internal/serve's compile cache).
		if err := m.Compile(); err != nil {
			return nil, err
		}
	}
	// endSolve is invoked on the success/partial-result path only;
	// config-error returns never start the chain and record no span.
	rec := s.cfg.Recorder
	endSolve := obs.Span(rec, "core.solve")
	obs.Emit(rec, "solve.start", map[string]any{
		"app": s.app.Name(), "backend": s.backend,
		"iterations": s.cfg.Iterations, "workers": s.cfg.Workers,
	})
	opt := gibbs.Options{
		Iterations:        s.cfg.Iterations,
		BurnIn:            s.cfg.BurnIn,
		Schedule:          gibbs.Checkerboard,
		Workers:           s.cfg.Workers,
		TrackMode:         true,
		RecordEnergyEvery: 1,
		Recorder:          rec,
	}
	if a := s.cfg.Anneal; a != nil {
		opt.Anneal = gibbs.GeometricAnneal(a.StartT, a.Rate, m.T)
	}
	factory := s.inst.Factory()
	var sess *fault.Session
	if f := s.cfg.Faults; f != nil {
		fa, ok := s.inst.(sampler.FaultAware)
		if !ok {
			return nil, fmt.Errorf("core: backend %s declares fault support but its instance cannot arm a session", s.backend)
		}
		sched, err := fault.Parse(f.Schedule)
		if err != nil {
			return nil, err
		}
		sched.Seed = f.Seed
		// Fault unit = image row; exposure = W site-samples per
		// unit per sweep; primaries = the unit's RET replica count.
		tl, err := sched.Compile(m.H, s.cfg.Iterations, m.W, s.inst.Unit().Config().Replicas)
		if err != nil {
			return nil, err
		}
		fo := *f
		if fo.Recorder == nil {
			fo.Recorder = rec
		}
		sess = fault.NewSession(tl, fo)
		factory = fa.FaultFactory(sess)
	}

	if ck := s.cfg.Checkpoint; ck != nil {
		fp := s.Fingerprint()
		if ck.Resume {
			snap, err := checkpoint.Load(ck.Path)
			switch {
			case err == nil:
				if ferr := fp.Check(snap.Fingerprint); ferr != nil {
					return nil, fmt.Errorf("core: resume from %s: %w", ck.Path, ferr)
				}
				if sess != nil {
					blob, ok := snap.Section(checkpoint.SectionFault)
					if !ok && snap.Sweep > 0 {
						return nil, fmt.Errorf("core: resume from %s: %w: fault session armed but snapshot has no fault section",
							ck.Path, checkpoint.ErrMismatch)
					}
					if ok {
						if serr := sess.UnmarshalBinary(blob); serr != nil {
							return nil, fmt.Errorf("core: resume from %s: %w", ck.Path, serr)
						}
					}
				}
				opt.Resume = snap
			case os.IsNotExist(err):
				// No snapshot yet: a fresh run that will create one.
			default:
				return nil, err
			}
		}
		opt.Checkpoint = &gibbs.CheckpointPolicy{
			EverySweeps: ck.EverySweeps,
			Every:       ck.Every,
			Now:         ck.Now,
			Fingerprint: fp,
			Sink: func(snap *checkpoint.Snapshot) error {
				if err := checkpoint.Save(ck.Path, snap); err != nil {
					return err
				}
				if ck.OnSave != nil {
					ck.OnSave(snap.Sweep)
				}
				return nil
			},
		}
		if sess != nil {
			opt.Checkpoint.Extra = func(snap *checkpoint.Snapshot) error {
				blob, err := sess.MarshalBinary()
				if err != nil {
					return err
				}
				snap.SetSection(checkpoint.SectionFault, blob)
				return nil
			}
		}
	}

	res, err := gibbs.Run(ctx, m, s.app.InitLabels(), factory, opt, s.cfg.Seed)
	if res == nil {
		return nil, err
	}
	out := &Result{
		MAP:         res.MAP,
		Final:       res.Final,
		Confidence:  res.Confidence,
		EnergyTrace: res.EnergyTrace,
		SamplerName: res.SamplerName,
		Iterations:  res.Iterations,
	}
	if sess != nil {
		out.FaultAudit = sess.Audit()
		out.FaultAudit.Schedule = s.cfg.Faults.Schedule
	}
	endSolve()
	if snap, ok := rec.(obs.Snapshotter); ok {
		out.Metrics = snap.Snapshot()
	}
	// err is nil for a completed run, or wraps ctx.Err() for a
	// cancellation that still produced the partial result above.
	return out, err
}

// SolveCtx runs the chain with explicit cancellation.
//
// Deprecated: Solve now takes the context as its first argument;
// SolveCtx is an alias kept for one release so existing callers keep
// compiling.
func (s *Solver) SolveCtx(ctx context.Context) (*Result, error) {
	return s.Solve(ctx)
}

// PerformanceReport models the hardware-level cost of a workload on the
// paper's architectures (§8) — independent of the functional Solve.
type PerformanceReport struct {
	Workload        arch.Workload
	GPUSeconds      float64
	OptGPUSeconds   float64
	RSUG1Seconds    float64
	RSUG4Seconds    float64
	AccelSeconds    float64
	AcceleratorUnit int
	UnitPowerMW     float64
	UnitAreaUM2     float64
}

// Performance returns the modeled Table-2/§8.2 numbers for a workload.
// Only the calibrated applications ("segmentation", "motion") have GPU
// models; other workloads return an error.
func Performance(w arch.Workload) (*PerformanceReport, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	g := arch.TitanX()
	models := arch.Calibrate(g)
	km, ok := models[w.Name]
	if !ok {
		return nil, fmt.Errorf("core: no calibrated GPU model for workload %q", w.Name)
	}
	a := arch.DefaultAccelerator()
	budget := power.RSUG1Budget(power.N15)
	return &PerformanceReport{
		Workload:        w,
		GPUSeconds:      g.Time(w, km.CyclesPerPixel(arch.Baseline, w.Labels)),
		OptGPUSeconds:   g.Time(w, km.CyclesPerPixel(arch.Optimized, w.Labels)),
		RSUG1Seconds:    g.Time(w, km.CyclesPerPixel(arch.RSUG1, w.Labels)),
		RSUG4Seconds:    g.Time(w, km.CyclesPerPixel(arch.RSUG4, w.Labels)),
		AccelSeconds:    a.Time(w),
		AcceleratorUnit: a.Units(),
		UnitPowerMW:     budget.TotalPowerMW(),
		UnitAreaUM2:     budget.TotalAreaUM2(),
	}, nil
}
