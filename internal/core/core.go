// Package core is the top of the reproduction stack: a single Solver
// API that runs MRF-MCMC inference for any of the paper's applications
// on a selectable backend — exact software Gibbs, ideal first-to-fire,
// Metropolis, or an emulated RSU-G unit of any width — and reports both
// the inference result and the modeled hardware performance
// (GPU/accelerator times, power, area) for the equivalent workload.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/gibbs"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/prototype"
	"repro/internal/ret"
	"repro/internal/rsu"
)

// Backend selects the sampling engine.
type Backend int

// Available sampling backends.
const (
	// SoftwareGibbs is the exact softmax Gibbs kernel (the paper's
	// software baseline).
	SoftwareGibbs Backend = iota
	// SoftwareFirstToFire is the unquantized first-to-fire race —
	// mathematically identical to SoftwareGibbs, the RSU's principle
	// without its hardware approximations.
	SoftwareFirstToFire
	// Metropolis is the uniform-proposal MH kernel.
	Metropolis
	// RSU emulates an RSU-G unit (width set by Config.RSUWidth).
	RSU
	// Prototype drives the emulated macro-scale RSU-G2 bench (§7).
	// Restricted to two-label models.
	Prototype
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case SoftwareGibbs:
		return "software-gibbs"
	case SoftwareFirstToFire:
		return "software-first-to-fire"
	case Metropolis:
		return "metropolis"
	case RSU:
		return "rsu"
	case Prototype:
		return "prototype"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Config selects the backend and chain parameters.
type Config struct {
	Backend    Backend
	Iterations int
	BurnIn     int
	// Workers sets checkerboard parallelism (defaults to 1). Seeded
	// results are identical for every worker count.
	Workers int
	// Compile enables the precomputed-potential fast path: the model's
	// unary energy table (W*H*M float64s) and doubleton tables are
	// materialized once before the chain runs, removing every closure
	// call from the sweep inner loop. Sampled labels are bit-identical
	// to the uncompiled path; the only cost is table memory.
	Compile bool
	// RSUWidth is the unit width K for the RSU backend (default 1).
	RSUWidth int
	// RSUMode selects ideal or photon-level RET simulation.
	RSUMode rsu.SamplingMode
	// Circuit optionally overrides the RET circuit design for the RSU
	// backend (nil: high-dynamic-range ladder).
	Circuit *ret.Circuit
	// Seed makes runs reproducible.
	Seed uint64
	// Anneal optionally enables simulated-annealing cooling: the chain
	// temperature starts at StartT, decays geometrically by Rate per
	// iteration, and floors at the model temperature. Sharper MAP
	// estimates for hard energy landscapes.
	Anneal *AnnealSpec
	// Faults optionally arms the fault-injection and degradation
	// subsystem (internal/fault) on the RSU backend: the schedule is
	// compiled over the image geometry (fault unit = image row), online
	// monitors watch every TTF measurement, and the selected policy
	// degrades around detected faults. Solve's Result then carries the
	// injected-vs-detected audit. RSU backend only.
	Faults *fault.Options
	// Checkpoint optionally arms durable snapshots and crash recovery
	// (internal/checkpoint). Nil disables checkpointing.
	Checkpoint *CheckpointSpec
	// Recorder optionally injects the observability layer (internal/obs):
	// sweep and color-phase timings, checkpoint and fault events, backend
	// counters. Nil (the default) records nothing and costs nothing.
	// Recording never touches the RNG streams, so an observed run
	// produces byte-identical labels to an unobserved one; the field is
	// likewise excluded from checkpoint fingerprints.
	Recorder obs.Recorder
	// Deadline bounds the wall time of one Solve call (0: none). On
	// expiry the chain stops at the next sweep boundary exactly as an
	// external context deadline would: a final checkpoint is written
	// when armed, and Solve returns the partial Result together with an
	// error wrapping context.DeadlineExceeded. Like Workers, Deadline is
	// deliberately excluded from checkpoint fingerprints — it truncates
	// the chain but never changes any sampled label, so a snapshot taken
	// under one deadline resumes bit-exactly under another.
	Deadline time.Duration
}

// Config limit bounds. Validate rejects values beyond these: they are
// far past any real workload, so exceeding one always indicates a
// corrupted or hostile configuration (a serving daemon must refuse it
// at admission, not discover it mid-solve).
const (
	// MaxDeadline bounds Config.Deadline.
	MaxDeadline = 30 * 24 * time.Hour
	// MaxIterations bounds Config.Iterations.
	MaxIterations = 1 << 30
	// MaxWorkers bounds Config.Workers.
	MaxWorkers = 4096
)

// CheckpointSpec wires the checkpoint subsystem into a solve: periodic
// durable snapshots at sweep boundaries, and resume from the last one.
type CheckpointSpec struct {
	// Path is the snapshot file. Each checkpoint atomically replaces it
	// (temp file + rename), so a crash at any instant leaves either the
	// previous or the new complete snapshot, never a torn one.
	Path string
	// EverySweeps checkpoints after every Nth completed sweep
	// (0 disables count-based checkpointing).
	EverySweeps int
	// Every checkpoints when this much wall time has elapsed, evaluated
	// at sweep boundaries. Requires Now (CLI entry points pass
	// time.Now; library code must not read the wall clock itself).
	Every time.Duration
	// Now supplies the wall clock for Every.
	Now func() time.Time
	// Resume loads Path before the run (if it exists) and continues
	// from the captured sweep. The snapshot's fingerprint must match
	// the configuration; a missing file starts from scratch.
	Resume bool
	// OnSave, when non-nil, is invoked after each snapshot is durably
	// written to Path, with the sweep number the snapshot captured.
	// Serving layers hook replication here; the callback runs on the
	// solve goroutine, so it must not block on slow work.
	OnSave func(sweep int)
}

// ErrInvalidConfig is wrapped by every configuration-validation error
// NewSolver and Config.Validate return; callers branch on it with
// errors.Is.
var ErrInvalidConfig = errors.New("core: invalid config")

// Validate checks every user-facing Config field, returning an error
// wrapping ErrInvalidConfig that names the offending field. App-
// dependent checks (label-space compatibility, RSU unit construction)
// happen in NewSolver, which calls Validate first.
func (cfg Config) Validate() error {
	switch cfg.Backend {
	case SoftwareGibbs, SoftwareFirstToFire, Metropolis, RSU, Prototype:
	default:
		return fmt.Errorf("%w: unknown backend %v", ErrInvalidConfig, cfg.Backend)
	}
	if cfg.Iterations <= 0 {
		return fmt.Errorf("%w: iterations must be positive, got %d", ErrInvalidConfig, cfg.Iterations)
	}
	if cfg.Iterations > MaxIterations {
		return fmt.Errorf("%w: iterations %d > limit %d", ErrInvalidConfig, cfg.Iterations, MaxIterations)
	}
	if cfg.BurnIn < 0 || cfg.BurnIn >= cfg.Iterations {
		return fmt.Errorf("%w: burn-in %d outside [0,%d)", ErrInvalidConfig, cfg.BurnIn, cfg.Iterations)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("%w: workers %d < 0", ErrInvalidConfig, cfg.Workers)
	}
	if cfg.Workers > MaxWorkers {
		return fmt.Errorf("%w: workers %d > limit %d", ErrInvalidConfig, cfg.Workers, MaxWorkers)
	}
	if cfg.Deadline < 0 {
		return fmt.Errorf("%w: deadline %v < 0", ErrInvalidConfig, cfg.Deadline)
	}
	if cfg.Deadline > MaxDeadline {
		return fmt.Errorf("%w: deadline %v > limit %v", ErrInvalidConfig, cfg.Deadline, MaxDeadline)
	}
	if cfg.RSUWidth < 0 {
		return fmt.Errorf("%w: RSU width %d < 0", ErrInvalidConfig, cfg.RSUWidth)
	}
	if a := cfg.Anneal; a != nil && (a.StartT <= 0 || a.Rate <= 0 || a.Rate >= 1) {
		return fmt.Errorf("%w: anneal spec %+v (want StartT > 0 and Rate in (0,1))", ErrInvalidConfig, *a)
	}
	if f := cfg.Faults; f != nil {
		if cfg.Backend != RSU {
			return fmt.Errorf("%w: fault injection models RSU hardware; backend is %v", ErrInvalidConfig, cfg.Backend)
		}
		if _, err := fault.Parse(f.Schedule); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if ck := cfg.Checkpoint; ck != nil {
		if ck.Path == "" {
			return fmt.Errorf("%w: checkpoint spec needs a Path", ErrInvalidConfig)
		}
		if ck.EverySweeps < 0 {
			return fmt.Errorf("%w: checkpoint EverySweeps %d < 0", ErrInvalidConfig, ck.EverySweeps)
		}
		if ck.Every < 0 {
			return fmt.Errorf("%w: checkpoint Every %v < 0", ErrInvalidConfig, ck.Every)
		}
		if ck.Every > 0 && ck.Now == nil {
			return fmt.Errorf("%w: checkpoint Every needs a Now clock", ErrInvalidConfig)
		}
	}
	return nil
}

// AnnealSpec parameterizes geometric simulated-annealing cooling.
type AnnealSpec struct {
	// StartT is the initial temperature (in model energy units).
	StartT float64
	// Rate is the per-iteration multiplier in (0, 1).
	Rate float64
}

// Solver runs inference for one application instance.
type Solver struct {
	app  apps.App
	cfg  Config
	unit *rsu.Unit
}

// NewSolver validates the configuration and prepares the backend.
func NewSolver(app apps.App, cfg Config) (*Solver, error) {
	if app == nil {
		return nil, fmt.Errorf("%w: nil application", ErrInvalidConfig)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Solver{app: app, cfg: cfg}
	if cfg.Backend == Prototype && app.Model().M != 2 {
		return nil, fmt.Errorf("%w: the RSU-G2 prototype supports exactly 2 labels, model has %d",
			ErrInvalidConfig, app.Model().M)
	}
	if cfg.Backend == RSU {
		width := cfg.RSUWidth
		if width == 0 {
			width = 1
		}
		unit, err := apps.BuildUnit(app, cfg.Circuit, width, cfg.RSUMode)
		if err != nil {
			return nil, err
		}
		s.unit = unit
	}
	return s, nil
}

// Unit returns the RSU unit (nil for software backends).
func (s *Solver) Unit() *rsu.Unit { return s.unit }

// Result is the outcome of a Solve call.
type Result struct {
	// MAP is the marginal-MAP estimate (per-site mode of post-burn-in
	// samples).
	MAP *img.LabelMap
	// Final is the last chain state.
	Final *img.LabelMap
	// Confidence is the per-site agreement with the MAP label (0..255).
	Confidence *img.Gray
	// EnergyTrace records the total energy each iteration.
	EnergyTrace []float64
	// SamplerName identifies the kernel that ran.
	SamplerName string
	// Iterations is the number of sweeps actually performed — equal to
	// Config.Iterations for a completed run, fewer when cancellation
	// stopped the chain early.
	Iterations int
	// FaultAudit reconciles injected against detected faults (nil
	// unless Config.Faults armed the fault subsystem).
	FaultAudit *fault.Audit
	// Metrics is a point-in-time snapshot of the injected recorder taken
	// as the solve returns (nil unless Config.Recorder implements
	// obs.Snapshotter — obs.Registry does).
	Metrics *obs.Snapshot
}

// Fingerprint returns the configuration identity stamped into this
// solver's checkpoints: two runs whose fingerprints match draw the
// exact same chain, so resuming one from the other's snapshot is
// sound. Workers is deliberately absent — RNG streams are attached to
// rows, so a snapshot taken at W=8 resumes bit-identically at W=1.
func (s *Solver) Fingerprint() checkpoint.Fingerprint {
	f := checkpoint.Fingerprint{
		App:        s.app.Name(),
		Backend:    s.cfg.Backend.String(),
		Seed:       s.cfg.Seed,
		Iterations: s.cfg.Iterations,
		BurnIn:     s.cfg.BurnIn,
		Compile:    s.cfg.Compile,
	}
	if a := s.cfg.Anneal; a != nil {
		f.AnnealStartT = a.StartT
		f.AnnealRate = a.Rate
	}
	if s.cfg.Backend == RSU {
		c := s.unit.Config()
		f.Tag = fmt.Sprintf("rsu:w=%d,mode=%v,replicas=%d", c.Width, c.Mode, c.Replicas)
		if fo := s.cfg.Faults; fo != nil {
			f.Tag += fmt.Sprintf(";faults=%q,seed=%d,policy=%v,spares=%d,maxresamples=%d",
				fo.Schedule, fo.Seed, fo.Policy, fo.Spares, fo.MaxResamples)
			if fo.Monitor != nil {
				f.Tag += fmt.Sprintf(",mon=%+v", *fo.Monitor)
			}
		}
	}
	return f
}

// Solve runs the chain from the application's data-driven initial
// labeling, with cooperative cancellation and (when Config.Checkpoint
// is set) durable snapshots and resume. Cancellation is honored at
// sweep boundaries: on ctx cancel or deadline, a final checkpoint is
// written (if armed), and Solve returns the *partial* Result computed
// so far together with an error wrapping ctx.Err().
func (s *Solver) Solve(ctx context.Context) (*Result, error) {
	if d := s.cfg.Deadline; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	m := s.app.Model()
	if s.cfg.Compile && !m.Compiled() {
		// An already-compiled model is reused as-is: tables depend only
		// on the model parameters, and table evaluation is bit-identical
		// to the closure path, so recompiling could only waste work.
		// This is what lets a serving layer share one compiled model
		// across many sequential jobs (internal/serve's compile cache).
		if err := m.Compile(); err != nil {
			return nil, err
		}
	}
	// endSolve is invoked on the success/partial-result path only;
	// config-error returns never start the chain and record no span.
	rec := s.cfg.Recorder
	endSolve := obs.Span(rec, "core.solve")
	obs.Emit(rec, "solve.start", map[string]any{
		"app": s.app.Name(), "backend": s.cfg.Backend.String(),
		"iterations": s.cfg.Iterations, "workers": s.cfg.Workers,
	})
	opt := gibbs.Options{
		Iterations:        s.cfg.Iterations,
		BurnIn:            s.cfg.BurnIn,
		Schedule:          gibbs.Checkerboard,
		Workers:           s.cfg.Workers,
		TrackMode:         true,
		RecordEnergyEvery: 1,
		Recorder:          rec,
	}
	if a := s.cfg.Anneal; a != nil {
		opt.Anneal = gibbs.GeometricAnneal(a.StartT, a.Rate, m.T)
	}
	var factory gibbs.Factory
	var sess *fault.Session
	switch s.cfg.Backend {
	case SoftwareGibbs:
		factory = gibbs.NewExactGibbs()
	case SoftwareFirstToFire:
		factory = gibbs.NewFirstToFire()
	case Metropolis:
		factory = gibbs.NewMetropolis()
	case RSU:
		if f := s.cfg.Faults; f != nil {
			sched, err := fault.Parse(f.Schedule)
			if err != nil {
				return nil, err
			}
			sched.Seed = f.Seed
			// Fault unit = image row; exposure = W site-samples per
			// unit per sweep; primaries = the unit's RET replica count.
			tl, err := sched.Compile(m.H, s.cfg.Iterations, m.W, s.unit.Config().Replicas)
			if err != nil {
				return nil, err
			}
			fo := *f
			if fo.Recorder == nil {
				fo.Recorder = rec
			}
			sess = fault.NewSession(tl, fo)
			factory = apps.NewFaultRSUSampler(s.app, s.unit, sess)
		} else {
			factory = apps.NewRSUSampler(s.app, s.unit)
		}
	case Prototype:
		factory = prototype.NewSampler(prototype.New())
	default:
		return nil, fmt.Errorf("core: unknown backend %v", s.cfg.Backend)
	}

	if ck := s.cfg.Checkpoint; ck != nil {
		fp := s.Fingerprint()
		if ck.Resume {
			snap, err := checkpoint.Load(ck.Path)
			switch {
			case err == nil:
				if ferr := fp.Check(snap.Fingerprint); ferr != nil {
					return nil, fmt.Errorf("core: resume from %s: %w", ck.Path, ferr)
				}
				if sess != nil {
					blob, ok := snap.Section(checkpoint.SectionFault)
					if !ok && snap.Sweep > 0 {
						return nil, fmt.Errorf("core: resume from %s: %w: fault session armed but snapshot has no fault section",
							ck.Path, checkpoint.ErrMismatch)
					}
					if ok {
						if serr := sess.UnmarshalBinary(blob); serr != nil {
							return nil, fmt.Errorf("core: resume from %s: %w", ck.Path, serr)
						}
					}
				}
				opt.Resume = snap
			case os.IsNotExist(err):
				// No snapshot yet: a fresh run that will create one.
			default:
				return nil, err
			}
		}
		opt.Checkpoint = &gibbs.CheckpointPolicy{
			EverySweeps: ck.EverySweeps,
			Every:       ck.Every,
			Now:         ck.Now,
			Fingerprint: fp,
			Sink: func(snap *checkpoint.Snapshot) error {
				if err := checkpoint.Save(ck.Path, snap); err != nil {
					return err
				}
				if ck.OnSave != nil {
					ck.OnSave(snap.Sweep)
				}
				return nil
			},
		}
		if sess != nil {
			opt.Checkpoint.Extra = func(snap *checkpoint.Snapshot) error {
				blob, err := sess.MarshalBinary()
				if err != nil {
					return err
				}
				snap.SetSection(checkpoint.SectionFault, blob)
				return nil
			}
		}
	}

	res, err := gibbs.Run(ctx, m, s.app.InitLabels(), factory, opt, s.cfg.Seed)
	if res == nil {
		return nil, err
	}
	out := &Result{
		MAP:         res.MAP,
		Final:       res.Final,
		Confidence:  res.Confidence,
		EnergyTrace: res.EnergyTrace,
		SamplerName: res.SamplerName,
		Iterations:  res.Iterations,
	}
	if sess != nil {
		out.FaultAudit = sess.Audit()
		out.FaultAudit.Schedule = s.cfg.Faults.Schedule
	}
	endSolve()
	if snap, ok := rec.(obs.Snapshotter); ok {
		out.Metrics = snap.Snapshot()
	}
	// err is nil for a completed run, or wraps ctx.Err() for a
	// cancellation that still produced the partial result above.
	return out, err
}

// SolveCtx runs the chain with explicit cancellation.
//
// Deprecated: Solve now takes the context as its first argument;
// SolveCtx is an alias kept for one release so existing callers keep
// compiling.
func (s *Solver) SolveCtx(ctx context.Context) (*Result, error) {
	return s.Solve(ctx)
}

// PerformanceReport models the hardware-level cost of a workload on the
// paper's architectures (§8) — independent of the functional Solve.
type PerformanceReport struct {
	Workload        arch.Workload
	GPUSeconds      float64
	OptGPUSeconds   float64
	RSUG1Seconds    float64
	RSUG4Seconds    float64
	AccelSeconds    float64
	AcceleratorUnit int
	UnitPowerMW     float64
	UnitAreaUM2     float64
}

// Performance returns the modeled Table-2/§8.2 numbers for a workload.
// Only the calibrated applications ("segmentation", "motion") have GPU
// models; other workloads return an error.
func Performance(w arch.Workload) (*PerformanceReport, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	g := arch.TitanX()
	models := arch.Calibrate(g)
	km, ok := models[w.Name]
	if !ok {
		return nil, fmt.Errorf("core: no calibrated GPU model for workload %q", w.Name)
	}
	a := arch.DefaultAccelerator()
	budget := power.RSUG1Budget(power.N15)
	return &PerformanceReport{
		Workload:        w,
		GPUSeconds:      g.Time(w, km.CyclesPerPixel(arch.Baseline, w.Labels)),
		OptGPUSeconds:   g.Time(w, km.CyclesPerPixel(arch.Optimized, w.Labels)),
		RSUG1Seconds:    g.Time(w, km.CyclesPerPixel(arch.RSUG1, w.Labels)),
		RSUG4Seconds:    g.Time(w, km.CyclesPerPixel(arch.RSUG4, w.Labels)),
		AccelSeconds:    a.Time(w),
		AcceleratorUnit: a.Units(),
		UnitPowerMW:     budget.TotalPowerMW(),
		UnitAreaUM2:     budget.TotalAreaUM2(),
	}, nil
}
