package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fault"
)

// sameSolveResult asserts bit-exact equality of everything a resumed
// run must reproduce.
func sameSolveResult(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d != %d", name, got.Iterations, want.Iterations)
	}
	for i := range want.Final.Labels {
		if got.Final.Labels[i] != want.Final.Labels[i] {
			t.Fatalf("%s: final label diverged at site %d", name, i)
		}
		if got.MAP.Labels[i] != want.MAP.Labels[i] {
			t.Fatalf("%s: MAP diverged at site %d", name, i)
		}
		if got.Confidence.Pix[i] != want.Confidence.Pix[i] {
			t.Fatalf("%s: confidence diverged at site %d", name, i)
		}
	}
	if len(got.EnergyTrace) != len(want.EnergyTrace) {
		t.Fatalf("%s: energy trace length %d != %d", name, len(got.EnergyTrace), len(want.EnergyTrace))
	}
	for i := range want.EnergyTrace {
		if math.Float64bits(got.EnergyTrace[i]) != math.Float64bits(want.EnergyTrace[i]) {
			t.Fatalf("%s: energy trace diverged at entry %d", name, i)
		}
	}
}

func solve(t *testing.T, cfg Config) *Result {
	t.Helper()
	app, _ := segApp(t)
	s, err := NewSolver(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSolveResumeMatchesUninterrupted: for every backend, a run that
// checkpointed periodically and a second run resumed from the last
// durable snapshot together reproduce the uninterrupted golden run
// bit-exactly — including across worker counts (the snapshot is taken
// at W=1 and resumed at W=3).
func TestSolveResumeMatchesUninterrupted(t *testing.T) {
	for _, backend := range []Backend{SoftwareGibbs, SoftwareFirstToFire, Metropolis, RSU} {
		t.Run(backend.String(), func(t *testing.T) {
			base := Config{Backend: backend, Iterations: 20, BurnIn: 5, Seed: 2, Compile: true}
			golden := solve(t, base)

			path := filepath.Join(t.TempDir(), "solve.ckpt")
			first := base
			first.Workers = 1
			first.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 7}
			solve(t, first) // leaves the sweep-14 snapshot at path

			snap, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Sweep != 14 {
				t.Fatalf("last durable snapshot at sweep %d, want 14", snap.Sweep)
			}

			resumed := base
			resumed.Workers = 3
			resumed.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 7, Resume: true}
			sameSolveResult(t, backend.String(), golden, solve(t, resumed))
		})
	}
}

// TestSolveResumeFaultyRSU: the fault session's state rides in the
// snapshot's fault section, so a resumed faulty run reproduces not just
// the labels but the full injected-vs-detected audit.
func TestSolveResumeFaultyRSU(t *testing.T) {
	base := Config{
		Backend: RSU, Iterations: 16, BurnIn: 4, Seed: 5,
		Faults: &fault.Options{Schedule: "hot:rate=5e-3;dead:unit=3,sweep=2", Seed: 9, Policy: fault.PolicyRemap},
	}
	golden := solve(t, base)
	if golden.FaultAudit == nil {
		t.Fatal("faulty run carries no audit")
	}

	path := filepath.Join(t.TempDir(), "faulty.ckpt")
	first := base
	first.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 5}
	solve(t, first)

	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Section(checkpoint.SectionFault); !ok {
		t.Fatal("snapshot of a faulty run has no fault section")
	}

	resumed := base
	resumed.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 5, Resume: true}
	got := solve(t, resumed)
	sameSolveResult(t, "faulty-rsu", golden, got)

	var wantAudit, gotAudit bytes.Buffer
	if err := golden.FaultAudit.WriteJSON(&wantAudit); err != nil {
		t.Fatal(err)
	}
	if err := got.FaultAudit.WriteJSON(&gotAudit); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantAudit.Bytes(), gotAudit.Bytes()) {
		t.Fatalf("fault audit diverged after resume:\n--- golden ---\n%s\n--- resumed ---\n%s",
			wantAudit.Bytes(), gotAudit.Bytes())
	}
}

// TestSolveResumeRejectsForeignSnapshot: a snapshot from a different
// configuration is refused with checkpoint.ErrMismatch, naming the
// field, instead of silently diverging.
func TestSolveResumeRejectsForeignSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solve.ckpt")
	base := Config{Backend: SoftwareGibbs, Iterations: 12, BurnIn: 2, Seed: 2}
	first := base
	first.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 5}
	solve(t, first)

	for name, mutate := range map[string]func(*Config){
		"seed":    func(c *Config) { c.Seed = 3 },
		"backend": func(c *Config) { c.Backend = Metropolis },
		"burn-in": func(c *Config) { c.BurnIn = 3 },
		"anneal":  func(c *Config) { c.Anneal = &AnnealSpec{StartT: 4, Rate: 0.9} },
	} {
		cfg := base
		mutate(&cfg)
		cfg.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 5, Resume: true}
		app, _ := segApp(t)
		s, err := NewSolver(app, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(context.Background()); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Errorf("%s change: got %v, want checkpoint.ErrMismatch", name, err)
		}
	}
}

// TestSolveResumeRejectsMissingFaultSection: a mid-run snapshot without
// the fault section cannot restore a fault-armed run.
func TestSolveResumeRejectsMissingFaultSection(t *testing.T) {
	base := Config{
		Backend: RSU, Iterations: 12, BurnIn: 2, Seed: 5,
		Faults: &fault.Options{Schedule: "hot:rate=5e-3", Seed: 9, Policy: fault.PolicyNone},
	}
	path := filepath.Join(t.TempDir(), "faulty.ckpt")
	first := base
	first.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 5}
	solve(t, first)

	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	snap.Sections = nil
	if err := checkpoint.Save(path, snap); err != nil {
		t.Fatal(err)
	}

	resumed := base
	resumed.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 5, Resume: true}
	app, _ := segApp(t)
	s, err := NewSolver(app, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background()); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("got %v, want checkpoint.ErrMismatch", err)
	}
}

// TestSolveCtxCancelled: cancellation surfaces the partial result, an
// error wrapping ctx.Err(), and a durable snapshot the run can resume
// from to reproduce the golden result.
func TestSolveCtxCancelled(t *testing.T) {
	base := Config{Backend: SoftwareGibbs, Iterations: 15, BurnIn: 3, Seed: 4}
	golden := solve(t, base)

	path := filepath.Join(t.TempDir(), "cancel.ckpt")
	cancelled := base
	cancelled.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 4}
	app, _ := segApp(t)
	s, err := NewSolver(app, cancelled)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.Solve(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Iterations != 0 {
		t.Fatalf("want partial result at 0 sweeps, got %+v", res)
	}
	if _, err := checkpoint.Load(path); err != nil {
		t.Fatalf("cancellation left no loadable snapshot: %v", err)
	}

	resumed := base
	resumed.Checkpoint = &CheckpointSpec{Path: path, EverySweeps: 4, Resume: true}
	sameSolveResult(t, "resume-after-cancel", golden, solve(t, resumed))
}

// TestSolveResumeMissingFileStartsFresh: Resume with no snapshot on
// disk is a fresh run (first boot and post-crash boot share one code
// path), and it still produces the golden result.
func TestSolveResumeMissingFileStartsFresh(t *testing.T) {
	base := Config{Backend: SoftwareGibbs, Iterations: 10, BurnIn: 2, Seed: 6}
	golden := solve(t, base)
	fresh := base
	fresh.Checkpoint = &CheckpointSpec{
		Path: filepath.Join(t.TempDir(), "never-written.ckpt"), EverySweeps: 3, Resume: true,
	}
	sameSolveResult(t, "fresh-resume", golden, solve(t, fresh))
}

// TestValidateCheckpointSpec: malformed checkpoint specs are rejected
// as ErrInvalidConfig before any work starts.
func TestValidateCheckpointSpec(t *testing.T) {
	app, _ := segApp(t)
	cases := []CheckpointSpec{
		{},                            // no path
		{Path: "x", EverySweeps: -1},  // negative interval
		{Path: "x", Every: -1},        // negative duration
		{Path: "x", Every: 1_000_000}, // duration without a clock
	}
	for i, ck := range cases {
		spec := ck
		_, err := NewSolver(app, Config{Iterations: 5, Checkpoint: &spec})
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("case %d: got %v, want ErrInvalidConfig", i, err)
		}
	}
}
