package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
)

func newSegApp(scene img.Scene) (apps.App, error) {
	return apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
}

func newRestApp(scene img.Scene) (apps.App, error) {
	return apps.NewRestoration(scene.Image, 4, 2, 1, 12, mrf.SecondOrder)
}

// TestCompileEquivalenceAllBackends: Config.Compile must not change a
// single sampled label on any backend — exact Gibbs, first-to-fire,
// Metropolis and the emulated RSU-G — for first- and second-order
// neighborhoods. Together with the sampler-level test in internal/gibbs
// this proves the compiled fast path is a pure optimization.
func TestCompileEquivalenceAllBackends(t *testing.T) {
	src := rng.New(31)
	scene := img.BlobScene(24, 20, 4, 7, src)

	backends := []Backend{SoftwareGibbs, SoftwareFirstToFire, Metropolis, RSU}
	for _, hood := range []mrf.Neighborhood{mrf.FirstOrder, mrf.SecondOrder} {
		for _, backend := range backends {
			t.Run(fmt.Sprintf("%v/%v", backend, hood), func(t *testing.T) {
				runOnce := func(compile bool) *Result {
					cfg := Config{
						Backend: backend, Iterations: 10, BurnIn: 3,
						Workers: 4, Compile: compile, Seed: 77,
					}
					var solver *Solver
					var err error
					if hood == mrf.FirstOrder {
						a, aerr := newSegApp(scene)
						if aerr != nil {
							t.Fatal(aerr)
						}
						solver, err = NewSolver(a, cfg)
					} else {
						a, aerr := newRestApp(scene)
						if aerr != nil {
							t.Fatal(aerr)
						}
						solver, err = NewSolver(a, cfg)
					}
					if err != nil {
						t.Fatal(err)
					}
					res, err := solver.Solve(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				plain := runOnce(false)
				compiled := runOnce(true)
				for i := range plain.Final.Labels {
					if plain.Final.Labels[i] != compiled.Final.Labels[i] {
						t.Fatalf("final labels diverge at site %d", i)
					}
					if plain.MAP.Labels[i] != compiled.MAP.Labels[i] {
						t.Fatalf("MAP diverges at site %d", i)
					}
				}
				for i := range plain.EnergyTrace {
					if plain.EnergyTrace[i] != compiled.EnergyTrace[i] {
						t.Fatalf("energy trace diverges at iteration %d", i)
					}
				}
			})
		}
	}
}

// TestCompileWithAnnealEquivalence: the compiled rate LUT is retuned on
// every annealing step; cooled chains must stay byte-identical too.
func TestCompileWithAnnealEquivalence(t *testing.T) {
	src := rng.New(5)
	scene := img.BlobScene(20, 18, 3, 7, src)
	run := func(compile bool) *Result {
		app, err := newSegApp(scene)
		if err != nil {
			t.Fatal(err)
		}
		solver, err := NewSolver(app, Config{
			Backend: SoftwareGibbs, Iterations: 12, BurnIn: 4, Workers: 2,
			Compile: compile, Seed: 9, Anneal: &AnnealSpec{StartT: 40, Rate: 0.8},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := solver.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, compiled := run(false), run(true)
	for i := range plain.Final.Labels {
		if plain.Final.Labels[i] != compiled.Final.Labels[i] {
			t.Fatalf("annealed compiled run diverges at site %d", i)
		}
	}
}
