package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/rng"
	"repro/internal/sampler/meanfield"
	"repro/internal/sampler/spiking"
)

func registryApp(t *testing.T, labels int) apps.App {
	t.Helper()
	scene := img.BlobScene(20, 20, labels, 6, rng.New(31))
	app, err := apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestParseBackendRoundTrip: every registered name parses to a Backend
// whose String() is that exact name, and unknown names wrap
// ErrInvalidConfig.
func TestParseBackendRoundTrip(t *testing.T) {
	names := Backends()
	if len(names) < 7 {
		t.Fatalf("registry has %d backends, want >= 7", len(names))
	}
	for _, name := range names {
		b, err := ParseBackend(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.String() != name {
			t.Fatalf("ParseBackend(%q).String() = %q", name, b.String())
		}
	}
	_, err := ParseBackend("bogus")
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("unknown name error %v does not wrap ErrInvalidConfig", err)
	}
	if !strings.Contains(err.Error(), "software-gibbs") {
		t.Fatalf("error %v does not list known backends", err)
	}
}

// TestBackendNameEquivalence: selecting a backend by registry name
// draws the byte-identical chain the integer enum selector draws — the
// registry path is the enum path.
func TestBackendNameEquivalence(t *testing.T) {
	app := registryApp(t, 2)
	for _, b := range []Backend{SoftwareGibbs, SoftwareFirstToFire, Metropolis, RSU, Prototype} {
		cfg := Config{Backend: b, Iterations: 12, BurnIn: 3, Seed: 17, Workers: 2}
		byEnum := solveOne(t, app, cfg)
		cfg.Backend = 0
		cfg.BackendName = b.String()
		byName := solveOne(t, app, cfg)
		if !bytes.Equal(byEnum.Final.Labels, byName.Final.Labels) ||
			!bytes.Equal(byEnum.MAP.Labels, byName.MAP.Labels) {
			t.Fatalf("backend %v: enum and name paths diverge", b)
		}
		if byEnum.SamplerName != byName.SamplerName {
			t.Fatalf("backend %v: sampler %q vs %q", b, byEnum.SamplerName, byName.SamplerName)
		}
	}
}

func solveOne(t *testing.T, app apps.App, cfg Config) *Result {
	t.Helper()
	s, err := NewSolver(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestNewBackendsSolve: the two approximate backends run end-to-end
// through the solver and identify themselves.
func TestNewBackendsSolve(t *testing.T) {
	app := registryApp(t, 2)
	res := solveOne(t, app, Config{BackendName: "spiking", Iterations: 15, BurnIn: 4, Seed: 3,
		Spiking: &spiking.Spec{Bits: 4, Tau: 2}})
	if res.SamplerName != "spiking-b4" {
		t.Fatalf("sampler %q", res.SamplerName)
	}
	res = solveOne(t, app, Config{BackendName: "meanfield", Iterations: 15, BurnIn: 4, Seed: 3,
		MeanField: &meanfield.Spec{Damping: 0.7}})
	if res.SamplerName != "meanfield" {
		t.Fatalf("sampler %q", res.SamplerName)
	}
}

// TestCapabilityChecks: the declared capabilities replace the old
// hard-coded per-backend cases in Validate/NewSolver.
func TestCapabilityChecks(t *testing.T) {
	binary := registryApp(t, 2)
	multi := registryApp(t, 5)
	cases := []struct {
		name string
		app  apps.App
		cfg  Config
	}{
		{"meanfield label bound", multi, Config{BackendName: "meanfield", Iterations: 5}},
		{"prototype label bound", multi, Config{BackendName: "prototype", Iterations: 5}},
		{"meanfield checkpoint", binary, Config{BackendName: "meanfield", Iterations: 5,
			Checkpoint: &CheckpointSpec{Path: t.TempDir() + "/ck", EverySweeps: 1}}},
		{"spiking faults", binary, Config{BackendName: "spiking", Iterations: 5,
			Faults: &fault.Options{}}},
		{"bad spiking knob", binary, Config{BackendName: "spiking", Iterations: 5,
			Spiking: &spiking.Spec{Bits: 99}}},
		{"bad meanfield knob", binary, Config{BackendName: "meanfield", Iterations: 5,
			MeanField: &meanfield.Spec{Damping: 2}}},
		{"unknown name", binary, Config{BackendName: "sram-sampler", Iterations: 5}},
	}
	for _, tc := range cases {
		if _, err := NewSolver(tc.app, tc.cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}
}

// TestSpikingCheckpointTag: approximate-backend knobs are part of the
// checkpoint fingerprint, so a resume under different knobs is refused.
func TestSpikingCheckpointTag(t *testing.T) {
	app := registryApp(t, 2)
	mk := func(bits int) *Solver {
		s, err := NewSolver(app, Config{BackendName: "spiking", Iterations: 10, Seed: 1,
			Spiking: &spiking.Spec{Bits: bits}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(4).Fingerprint(), mk(8).Fingerprint()
	if a.Tag == b.Tag {
		t.Fatalf("bits=4 and bits=8 share fingerprint tag %q", a.Tag)
	}
}
