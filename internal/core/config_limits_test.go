package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestConfigValidateLimits pins the admission-hardening bounds added
// for the serving layer: zero/negative and absurdly large deadline and
// limit fields are rejected up front with wrapped ErrInvalidConfig, not
// discovered mid-solve.
func TestConfigValidateLimits(t *testing.T) {
	base := Config{Backend: SoftwareGibbs, Iterations: 10, BurnIn: 2}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative deadline", func(c *Config) { c.Deadline = -time.Second }},
		{"absurd deadline", func(c *Config) { c.Deadline = MaxDeadline + time.Hour }},
		{"zero iterations", func(c *Config) { c.Iterations = 0 }},
		{"negative iterations", func(c *Config) { c.Iterations = -1 }},
		{"absurd iterations", func(c *Config) { c.Iterations = MaxIterations + 1 }},
		{"negative workers", func(c *Config) { c.Workers = -1 }},
		{"absurd workers", func(c *Config) { c.Workers = MaxWorkers + 1 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}

	// The boundary values themselves are legal.
	ok := base
	ok.Deadline = MaxDeadline
	ok.Workers = MaxWorkers
	if err := ok.Validate(); err != nil {
		t.Errorf("boundary config rejected: %v", err)
	}
}

// TestSolveDeadlinePartialResult exercises Config.Deadline end to end:
// an expired deadline stops the chain at a sweep boundary and returns
// the partial result with an error wrapping context.DeadlineExceeded —
// the contract the serving layer's deadline-exceeded terminal state is
// built on.
func TestSolveDeadlinePartialResult(t *testing.T) {
	app, _ := segApp(t)
	s, err := NewSolver(app, Config{
		Backend: SoftwareGibbs, Iterations: 1 << 20, BurnIn: 1,
		Seed: 5, Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("no partial result returned at deadline")
	}
	if res.Iterations <= 0 || res.Iterations >= 1<<20 {
		t.Errorf("partial sweep count %d not in (0, budget)", res.Iterations)
	}
	if res.Final == nil {
		t.Error("partial result has no final labels")
	}
}

// TestSolveDeadlineDoesNotPerturbChain pins that a generous deadline
// is invisible: same seed with and without Deadline set produces
// byte-identical labels (Deadline only truncates, never perturbs).
func TestSolveDeadlineDoesNotPerturbChain(t *testing.T) {
	run := func(d time.Duration) *Result {
		t.Helper()
		app, _ := segApp(t)
		s, err := NewSolver(app, Config{
			Backend: SoftwareGibbs, Iterations: 20, BurnIn: 5, Seed: 77, Deadline: d,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(0)
	b := run(time.Hour)
	if string(a.Final.Labels) != string(b.Final.Labels) {
		t.Error("Deadline changed sampled labels")
	}
	if string(a.MAP.Labels) != string(b.MAP.Labels) {
		t.Error("Deadline changed MAP labels")
	}
}
