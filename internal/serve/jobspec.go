package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/mrf"
	"repro/internal/rng"
	"repro/internal/sampler"
)

// ErrInvalidSpec is wrapped by every job-spec validation error; the
// HTTP layer maps it to 400 and the retry layer treats it as permanent.
var ErrInvalidSpec = errors.New("serve: invalid job spec")

// Spec bounds: a serving daemon must reject absurd requests before they
// reserve queue slots, not discover them mid-solve.
const (
	// MaxSpecSize bounds the synthetic scene edge (memory: size²·M·8
	// bytes of compiled tables).
	MaxSpecSize = 1024
	// MaxSpecIterations bounds the sweep budget of one job.
	MaxSpecIterations = 1 << 20
	// MaxSpecWorkers bounds per-job checkerboard parallelism.
	MaxSpecWorkers = 256
)

// JobSpec is the client-facing description of one inference job. The
// observation is synthesized deterministically from SceneSeed, so a
// spec fully determines the chain: two runs of the same spec (at any
// worker count) produce byte-identical labels, which is what lets the
// chaos harness compare a SIGKILLed-and-resumed server against an
// uninterrupted golden run.
type JobSpec struct {
	// App selects the workload: segmentation | stereo | motion |
	// restoration.
	App string `json:"app"`
	// Size is the synthetic scene edge in pixels (default 32).
	Size int `json:"size,omitempty"`
	// Labels is the label count for segmentation (default 3).
	Labels int `json:"labels,omitempty"`
	// SceneSeed draws the synthetic observation (independent of the
	// chain seed).
	SceneSeed uint64 `json:"scene_seed"`
	// Backend selects the sampling engine by registry name (see
	// core.Backends(); default software). The legacy spellings
	// "software" and "first-to-fire" remain accepted. Backends that
	// cannot checkpoint (meanfield) are rejected: the server
	// checkpoints every in-flight chain.
	Backend string `json:"backend,omitempty"`
	// Width is the RSU-G unit width K (rsu backend; default 1).
	Width int `json:"width,omitempty"`
	// Iterations and BurnIn are the chain budget (defaults 100 / 30).
	Iterations int `json:"iterations,omitempty"`
	BurnIn     int `json:"burn_in,omitempty"`
	// Workers is the requested checkerboard parallelism (0: server
	// default). Results are worker-count-invariant, so the server is
	// free to override it — see Config.WorkerOverride.
	Workers int `json:"workers,omitempty"`
	// Seed is the chain seed.
	Seed uint64 `json:"seed"`
	// Compile enables the precomputed-table sweep engine (bit-identical
	// labels either way; on is the serving default because the compile
	// cache amortizes table construction across jobs).
	Compile *bool `json:"compile,omitempty"`
	// Faults optionally arms the fault-injection subsystem (rsu backend
	// only) with this schedule DSL.
	Faults string `json:"faults,omitempty"`
	// FaultPolicy selects the initial degradation policy (none | remap |
	// resample | quarantine | fallback; default remap). The server
	// escalates toward fallback on degraded attempts.
	FaultPolicy string `json:"fault_policy,omitempty"`
	// FaultSeed drives the schedule's stochastic expansion.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// DeadlineMS bounds one attempt's wall time in milliseconds
	// (0: no deadline). A job over deadline terminates with the partial
	// labels and sweep count it reached. The budget re-arms when a
	// preempted job resumes after a restart: wall-clock budgets are
	// per-attempt, chain budgets (Iterations) are global.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// withDefaults returns the spec with zero fields replaced by their
// documented defaults.
func (sp JobSpec) withDefaults() JobSpec {
	if sp.App == "" {
		sp.App = "segmentation"
	}
	if sp.Backend == "" {
		sp.Backend = "software"
	}
	if sp.Size == 0 {
		sp.Size = 32
	}
	if sp.Labels == 0 {
		sp.Labels = 3
	}
	if sp.Iterations == 0 {
		sp.Iterations = 100
	}
	if sp.BurnIn == 0 {
		sp.BurnIn = min(30, sp.Iterations-1)
	}
	if sp.Compile == nil {
		on := true
		sp.Compile = &on
	}
	if sp.FaultPolicy == "" {
		sp.FaultPolicy = "remap"
	}
	return sp
}

// Validate rejects malformed specs with errors wrapping ErrInvalidSpec.
// It re-applies defaults first, so callers may validate raw client
// input directly.
func (sp JobSpec) Validate() error {
	sp = sp.withDefaults()
	switch sp.App {
	case "segmentation", "stereo", "motion", "restoration":
	default:
		return fmt.Errorf("%w: unknown app %q", ErrInvalidSpec, sp.App)
	}
	if _, err := parseBackend(sp.Backend); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	if sp.Size < 8 || sp.Size > MaxSpecSize {
		return fmt.Errorf("%w: size %d outside [8,%d]", ErrInvalidSpec, sp.Size, MaxSpecSize)
	}
	if sp.Labels < 2 || sp.Labels > 8 {
		return fmt.Errorf("%w: labels %d outside [2,8]", ErrInvalidSpec, sp.Labels)
	}
	if sp.Iterations < 0 || sp.Iterations > MaxSpecIterations {
		return fmt.Errorf("%w: iterations %d outside [1,%d]", ErrInvalidSpec, sp.Iterations, MaxSpecIterations)
	}
	if sp.BurnIn < 0 || sp.BurnIn >= sp.Iterations {
		return fmt.Errorf("%w: burn-in %d outside [0,%d)", ErrInvalidSpec, sp.BurnIn, sp.Iterations)
	}
	if sp.Workers < 0 || sp.Workers > MaxSpecWorkers {
		return fmt.Errorf("%w: workers %d outside [0,%d]", ErrInvalidSpec, sp.Workers, MaxSpecWorkers)
	}
	if sp.Width < 0 || sp.Width > 64 {
		return fmt.Errorf("%w: width %d outside [0,64]", ErrInvalidSpec, sp.Width)
	}
	if sp.DeadlineMS < 0 || time.Duration(sp.DeadlineMS)*time.Millisecond > core.MaxDeadline {
		return fmt.Errorf("%w: deadline %dms outside [0,%v]", ErrInvalidSpec, sp.DeadlineMS, core.MaxDeadline)
	}
	if sp.Faults != "" {
		if sp.Backend != "rsu" {
			return fmt.Errorf("%w: faults need the rsu backend, got %q", ErrInvalidSpec, sp.Backend)
		}
		if _, err := fault.Parse(sp.Faults); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
		}
	}
	if _, err := fault.ParsePolicy(sp.FaultPolicy); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	return nil
}

// ModelKey fingerprints the fields that determine the MRF model and its
// compiled tables — the compile-cache key. Chain parameters (seed,
// iterations, backend) are deliberately excluded: many jobs, few
// distinct models.
func (sp JobSpec) ModelKey() string {
	sp = sp.withDefaults()
	return fmt.Sprintf("%s/size=%d/labels=%d/scene=%d", sp.App, sp.Size, sp.Labels, sp.SceneSeed)
}

// specBackendAliases maps the spec spellings that predate the backend
// registry onto registry names; canonical names pass through untouched.
var specBackendAliases = map[string]string{
	"software":      "software-gibbs",
	"first-to-fire": "software-first-to-fire",
}

// parseBackend maps a spec backend name onto a core backend through
// the registry. The server checkpoints every in-flight chain (drain,
// migration, crash recovery), so backends whose registry capabilities
// exclude checkpointing are rejected at admission rather than failing
// mid-drain.
func parseBackend(name string) (core.Backend, error) {
	canon := name
	if a, ok := specBackendAliases[name]; ok {
		canon = a
	}
	b, err := core.ParseBackend(canon)
	if err != nil {
		return 0, fmt.Errorf("unknown backend %q (known: %s)", name, strings.Join(core.Backends(), ", "))
	}
	be, _ := sampler.Lookup(canon)
	if !be.Caps().Checkpoint {
		return 0, fmt.Errorf("backend %q cannot checkpoint/resume and is not servable", name)
	}
	return b, nil
}

// buildApp synthesizes the spec's deterministic scene and constructs
// the application over it. Expensive relative to small solves — which
// is exactly what the compile cache amortizes.
func buildApp(sp JobSpec) (apps.App, error) {
	sp = sp.withDefaults()
	src := rng.New(sp.SceneSeed)
	switch sp.App {
	case "segmentation":
		scene := img.BlobScene(sp.Size, sp.Size, sp.Labels, 8, src)
		return apps.NewSegmentation(scene.Image, scene.Means, 2, 12)
	case "stereo":
		scene := img.StereoPair(sp.Size, sp.Size, sp.Labels, sp.Labels-1, 2, src)
		return apps.NewStereoVision(scene.Left, scene.Right, sp.Labels, 1, 8)
	case "motion":
		scene := img.MotionPair(sp.Size, sp.Size, 2, -1, 3, 2, src)
		return apps.NewMotionEstimation(scene.Frame1, scene.Frame2, 3, 1, 8)
	case "restoration":
		scene := img.BlobScene(sp.Size, sp.Size, sp.Labels, 15, src)
		return apps.NewRestoration(scene.Image, sp.Labels, 2, 0, 12, mrf.FirstOrder)
	default:
		return nil, fmt.Errorf("%w: unknown app %q", ErrInvalidSpec, sp.App)
	}
}

// solverConfig assembles the core configuration for one attempt of the
// job: the spec's chain parameters, the server's checkpoint policy
// pointed at the job's snapshot path, and the (possibly escalated)
// fault policy. onSave, when non-nil, fires after each durable
// snapshot write (the replication layer's dirty-marking hook).
func solverConfig(sp JobSpec, policy fault.Policy, workers int, ckptPath string, everySweeps int, onSave func(int)) (core.Config, error) {
	sp = sp.withDefaults()
	backend, err := parseBackend(sp.Backend)
	if err != nil {
		return core.Config{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	cfg := core.Config{
		Backend:    backend,
		Iterations: sp.Iterations,
		BurnIn:     sp.BurnIn,
		Workers:    workers,
		Compile:    *sp.Compile,
		RSUWidth:   sp.Width,
		Seed:       sp.Seed,
		Deadline:   time.Duration(sp.DeadlineMS) * time.Millisecond,
	}
	if sp.Faults != "" {
		cfg.Faults = &fault.Options{Schedule: sp.Faults, Seed: sp.FaultSeed, Policy: policy}
	}
	if ckptPath != "" {
		cfg.Checkpoint = &core.CheckpointSpec{
			Path:        ckptPath,
			EverySweeps: everySweeps,
			Resume:      true,
			OnSave:      onSave,
		}
	}
	return cfg, nil
}

// Digest hashes every chain-derived field of a result into a stable hex
// string (the same construction as the checkpoint chaos harness): two
// results are byte-identical iff their digests match, so resumed-vs-
// uninterrupted equivalence travels through the job-status API as one
// short string.
func Digest(res *core.Result) string {
	h := sha256.New()
	var word [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(word[:], uint64(v))
		h.Write(word[:])
	}
	writeInt(res.Iterations)
	h.Write(res.Final.Labels)
	if res.MAP != nil {
		h.Write(res.MAP.Labels)
	}
	if res.Confidence != nil {
		h.Write(res.Confidence.Pix)
	}
	writeInt(len(res.EnergyTrace))
	for _, e := range res.EnergyTrace {
		binary.LittleEndian.PutUint64(word[:], math.Float64bits(e))
		h.Write(word[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
