package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve/backoff"
)

// testSpec is a small, fast job every test reuses (≈0.1 s with
// per-sweep checkpoint fsyncs).
func testSpec() JobSpec {
	return JobSpec{
		App: "segmentation", Size: 16, Labels: 3,
		Iterations: 20, BurnIn: 5, Seed: 11, SceneSeed: 4,
	}
}

// testConfig returns a server config on a fresh state dir with
// immediate (recorded, non-sleeping) backoff.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		StateDir:    t.TempDir(),
		QueueDepth:  16,
		Shards:      2,
		BackoffSeed: 9,
		Recorder:    obs.New(),
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := newServer(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() {
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		_ = s.Drain(dctx)
		cancel()
	})
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	return s
}

// waitTerminal polls until the job leaves the non-terminal states.
func waitTerminal(t *testing.T, s *Server, id string, timeout time.Duration) jobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		_, st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, st, _ := s.Job(id)
	t.Fatalf("job %s not terminal after %v (state %s, error %q)", id, timeout, st.State, st.Error)
	return jobStatus{}
}

func counterValue(reg *obs.Registry, name string) int64 {
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func gaugeValue(reg *obs.Registry, name string) float64 {
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

func TestSubmitCompletesAndServesLabels(t *testing.T) {
	cfg := testConfig(t)
	s := startServer(t, cfg)
	id, err := s.Submit("alice", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state %s (error %q), want done", st.State, st.Error)
	}
	if st.Digest == "" {
		t.Error("done job has no digest")
	}
	if st.Sweeps != 20 {
		t.Errorf("sweeps %d, want 20", st.Sweeps)
	}
	labels, err := s.Labels(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(labels, []byte("P5")) {
		t.Errorf("labels are not a raw PGM: %q...", labels[:min(8, len(labels))])
	}
	if got := counterValue(cfg.Recorder, "serve.jobs.completed"); got != 1 {
		t.Errorf("serve.jobs.completed = %d", got)
	}
	if got := counterValue(cfg.Recorder, "serve.tenant.alice.accepted"); got != 1 {
		t.Errorf("serve.tenant.alice.accepted = %d", got)
	}
}

// TestQueueSheddingWithRetryAfter pins the bounded-admission contract:
// with no shards draining the queue, submissions past QueueDepth shed
// with a typed ShedError carrying a Retry-After hint, and the shed
// counter moves.
func TestQueueSheddingWithRetryAfter(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 2
	s := newServer(t, cfg) // never started: nothing drains the queue
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("alice", testSpec()); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := s.Submit("alice", testSpec())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overflow submit: %v, want ShedError", err)
	}
	if shed.Reason != "queue-full" {
		t.Errorf("reason %q", shed.Reason)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("RetryAfter %v, want > 0", shed.RetryAfter)
	}
	if got := counterValue(cfg.Recorder, "serve.shed.queue"); got != 1 {
		t.Errorf("serve.shed.queue = %d", got)
	}
	if got := gaugeValue(cfg.Recorder, "serve.queue.depth"); got != 2 {
		t.Errorf("serve.queue.depth = %g", got)
	}
}

// TestTenantIsolation pins that one tenant exhausting its rate and
// quota limits does not shed another tenant's submissions.
func TestTenantIsolation(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	cfg := testConfig(t)
	cfg.Now = func() time.Time { return now }
	cfg.Tenants = map[string]TenantLimits{
		"noisy": {RatePerSec: 1, Burst: 1, MaxInFlight: 8},
		"quiet": {RatePerSec: 100, Burst: 8},
	}
	s := newServer(t, cfg) // unstarted: jobs stay queued, quota stays held

	if _, err := s.Submit("noisy", testSpec()); err != nil {
		t.Fatalf("noisy first submit: %v", err)
	}
	_, err := s.Submit("noisy", testSpec())
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "rate-limited" {
		t.Fatalf("noisy second submit: %v, want rate-limited shed", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > time.Second {
		t.Errorf("rate shed RetryAfter %v outside (0, 1s]", shed.RetryAfter)
	}
	// The noisy tenant's exhaustion must not touch quiet.
	for i := 0; i < 4; i++ {
		if _, err := s.Submit("quiet", testSpec()); err != nil {
			t.Fatalf("quiet submit %d 429'd behind noisy tenant: %v", i, err)
		}
	}
	// Refilled bucket admits again...
	now = now.Add(2 * time.Second)
	if _, err := s.Submit("noisy", testSpec()); err != nil {
		t.Fatalf("noisy after refill: %v", err)
	}
	if got := counterValue(cfg.Recorder, "serve.tenant.noisy.shed"); got != 1 {
		t.Errorf("serve.tenant.noisy.shed = %d", got)
	}
}

func TestTenantQuota(t *testing.T) {
	cfg := testConfig(t)
	cfg.Tenants = map[string]TenantLimits{"a": {MaxInFlight: 2}}
	s := newServer(t, cfg) // unstarted: in-flight never drains
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("a", testSpec()); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit("a", testSpec())
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "quota" {
		t.Fatalf("quota submit: %v, want quota shed", err)
	}
}

// TestRetryTransientThenCompletes drives the backoff path: the first
// two attempts fail with an injected transient error, the third
// succeeds; the job ends done with Attempts = 3 and the retry counter
// moved.
func TestRetryTransientThenCompletes(t *testing.T) {
	cfg := testConfig(t)
	cfg.Retry = backoff.Policy{Base: time.Millisecond, Cap: time.Second, MaxRetries: 4, Jitter: 0.5}
	fails := map[string]int{}
	cfg.preSolve = func(id string, attempt int) error {
		if fails[id] < 2 {
			fails[id]++
			return fmt.Errorf("injected transient %d", attempt)
		}
		return nil
	}
	s := startServer(t, cfg)
	id, err := s.Submit("alice", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state %s (error %q), want done", st.State, st.Error)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts %d, want 3", st.Attempts)
	}
	if got := counterValue(cfg.Recorder, "serve.retries"); got != 2 {
		t.Errorf("serve.retries = %d, want 2", got)
	}
}

// TestPermanentErrorFailsWithoutRetry: errors wrapping the permanent
// sentinels (here core.ErrInvalidConfig) must fail the job on the
// first attempt.
func TestPermanentErrorFailsWithoutRetry(t *testing.T) {
	cfg := testConfig(t)
	cfg.Retry = backoff.Policy{Base: time.Millisecond, MaxRetries: 5}
	attempts := 0
	cfg.preSolve = func(string, int) error {
		attempts++
		return fmt.Errorf("reject: %w", core.ErrInvalidConfig)
	}
	s := startServer(t, cfg)
	id, err := s.Submit("alice", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id, 30*time.Second)
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed", st.State)
	}
	if attempts != 1 {
		t.Errorf("attempts %d, want 1 (permanent errors never retry)", attempts)
	}
	if got := counterValue(cfg.Recorder, "serve.retries"); got != 0 {
		t.Errorf("serve.retries = %d, want 0", got)
	}
}

// TestRetryJitterDoesNotPerturbChain pins the determinism boundary in
// the acceptance criteria: retry/backoff jitter draws from its own
// stream, so a job that needed retries produces byte-identical labels
// (equal digest) to the same spec solved first try.
func TestRetryJitterDoesNotPerturbChain(t *testing.T) {
	run := func(failures int) jobStatus {
		cfg := testConfig(t)
		cfg.Retry = backoff.Policy{Base: time.Millisecond, Cap: time.Second, MaxRetries: 4, Jitter: 1}
		remaining := failures
		cfg.preSolve = func(string, int) error {
			if remaining > 0 {
				remaining--
				return errors.New("injected transient")
			}
			return nil
		}
		s := startServer(t, cfg)
		id, err := s.Submit("alice", testSpec())
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, s, id, 30*time.Second)
		if st.State != StateDone {
			t.Fatalf("state %s (error %q)", st.State, st.Error)
		}
		return st
	}
	clean := run(0)
	retried := run(3)
	if clean.Digest != retried.Digest {
		t.Errorf("digest drift across retries: %s vs %s", clean.Digest, retried.Digest)
	}
}

// TestDeadlineExceededKeepsPartial submits a job whose chain budget
// cannot fit its wall-clock deadline: it must terminate in
// deadline-exceeded with a nonzero partial sweep count and fetchable
// labels.
func TestDeadlineExceededKeepsPartial(t *testing.T) {
	cfg := testConfig(t)
	s := startServer(t, cfg)
	spec := testSpec()
	spec.Iterations = 1 << 19
	spec.BurnIn = 1
	spec.DeadlineMS = 200
	id, err := s.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id, 60*time.Second)
	if st.State != StateExpired {
		t.Fatalf("state %s (error %q), want deadline-exceeded", st.State, st.Error)
	}
	if st.Sweeps <= 0 || st.Sweeps >= 1<<19 {
		t.Errorf("partial sweeps %d not in (0, budget)", st.Sweeps)
	}
	if st.Digest == "" {
		t.Error("expired job has no digest")
	}
	labels, err := s.Labels(id)
	if err != nil {
		t.Fatalf("partial labels: %v", err)
	}
	if !bytes.HasPrefix(labels, []byte("P5")) {
		t.Error("partial labels are not a PGM")
	}
	if got := counterValue(cfg.Recorder, "serve.jobs.deadline_exceeded"); got != 1 {
		t.Errorf("serve.jobs.deadline_exceeded = %d", got)
	}
}

// TestDrainPreemptsAndRestartResumes is the graceful half of the crash
// matrix: SIGTERM-style drain checkpoints in-flight chains, a new
// server on the same state dir resumes them (at a different worker
// count), and the digests match an uninterrupted golden run.
func TestDrainPreemptsAndRestartResumes(t *testing.T) {
	spec := testSpec()
	spec.Iterations = 400 // ≈1 s with per-sweep fsyncs: drain lands mid-chain

	// Golden: the same spec, uninterrupted, W=1.
	goldenCfg := testConfig(t)
	goldenCfg.WorkerOverride = 1
	golden := startServer(t, goldenCfg)
	gid, err := golden.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	gst := waitTerminal(t, golden, gid, 120*time.Second)
	if gst.State != StateDone {
		t.Fatalf("golden state %s (error %q)", gst.State, gst.Error)
	}

	// Interrupted: start, wait for the chain to make progress, drain.
	state := t.TempDir()
	cfg1 := testConfig(t)
	cfg1.StateDir = state
	cfg1.WorkerOverride = 2
	s1 := newServer(t, cfg1)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	if err := s1.Start(ctx1); err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForCheckpoint(t, s1, id, 60*time.Second)
	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer dcancel()
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if !s1.Draining() {
		t.Error("Draining() false after Drain")
	}
	if _, err := s1.Submit("alice", testSpec()); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining: %v, want ErrDraining", err)
	}
	_, st, err := s1.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("job finished (%s) before drain; grow the spec budget", st.State)
	}
	if st.State != StatePreempted {
		t.Fatalf("state after drain %s, want preempted", st.State)
	}
	cancel1()

	// Restart on the same state dir at another worker count: the parked
	// chain must resume bit-exactly.
	cfg2 := testConfig(t)
	cfg2.StateDir = state
	cfg2.WorkerOverride = 3
	s2 := startServer(t, cfg2)
	if got := counterValue(cfg2.Recorder, "serve.jobs.recovered"); got != 1 {
		t.Errorf("serve.jobs.recovered = %d, want 1", got)
	}
	st2 := waitTerminal(t, s2, id, 120*time.Second)
	if st2.State != StateDone {
		t.Fatalf("resumed state %s (error %q)", st2.State, st2.Error)
	}
	if st2.Digest != gst.Digest {
		t.Errorf("resumed digest %s != golden %s (resume must be byte-exact)", st2.Digest, gst.Digest)
	}
	if got := counterValue(cfg2.Recorder, "serve.jobs.resumed_completed"); got != 1 {
		t.Errorf("serve.jobs.resumed_completed = %d, want 1", got)
	}
}

// waitForCheckpoint blocks until the job's chain snapshot exists (the
// chain has completed at least one sweep in this incarnation).
func waitForCheckpoint(t *testing.T, s *Server, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	path := s.store.CheckpointPath(id)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no checkpoint for %s after %v", id, timeout)
}

func TestModelCacheReuse(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1 // sequential: the second job must hit the first's check-in
	s := startServer(t, cfg)
	for i := 0; i < 2; i++ {
		spec := testSpec()
		spec.Seed = uint64(100 + i) // different chains, same model
		id, err := s.Submit("alice", spec)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, s, id, 30*time.Second); st.State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, st.State, st.Error)
		}
	}
	hits, misses, _ := s.cache.Stats()
	if misses != 1 || hits != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestAppCacheCheckoutSemantics(t *testing.T) {
	c := newAppCache(2)
	if got := c.Get("k"); got != nil {
		t.Fatal("hit on empty cache")
	}
	a1, err := buildApp(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", a1)
	if got := c.Get("k"); got != a1 {
		t.Fatal("checked-in instance not returned")
	}
	// Checkout is exclusive: a second Get must miss.
	if got := c.Get("k"); got != nil {
		t.Fatal("instance handed out twice")
	}
	// Eviction past capacity.
	c.Put("a", a1)
	c.Put("b", a1)
	c.Put("c", a1)
	if got := c.Get("a"); got != nil {
		t.Error("LRU victim not evicted")
	}
	_, _, evicted := c.Stats()
	if evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
	// Disabled cache is inert.
	var nilCache *appCache
	nilCache.Put("x", a1)
	if nilCache.Get("x") != nil {
		t.Error("nil cache returned an instance")
	}
}

// TestHTTPAPI drives the full HTTP surface over httptest: submit (202,
// Location), status, NDJSON events, labels, invalid spec (400),
// unknown job (404), queue shed (429 + Retry-After header), healthz.
func TestHTTPAPI(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 4
	s := startServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Submit.
	body, _ := json.Marshal(testSpec())
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set(tenantHeader, "alice")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view statusView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit -> %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+view.ID {
		t.Errorf("Location %q", loc)
	}
	if view.Tenant != "alice" || view.ID == "" {
		t.Errorf("view %+v", view)
	}

	waitTerminal(t, s, view.ID, 30*time.Second)

	// Status.
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got statusView
	_ = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != StateDone || !got.Terminal {
		t.Errorf("status %+v", got)
	}

	// Events: non-follow must include the terminal transition as NDJSON.
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/" + view.ID + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type %q", ct)
	}
	sawDone, lines := false, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		lines++
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		if fields, ok := ev["fields"].(map[string]any); ok && fields["state"] == "done" {
			sawDone = true
		}
	}
	resp.Body.Close()
	if lines == 0 || !sawDone {
		t.Errorf("event stream: %d lines, sawDone=%v", lines, sawDone)
	}

	// Labels.
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/" + view.ID + "/labels")
	if err != nil {
		t.Fatal(err)
	}
	pgm := make([]byte, 2)
	_, _ = resp.Body.Read(pgm)
	resp.Body.Close()
	if string(pgm) != "P5" {
		t.Errorf("labels endpoint did not serve a PGM (got %q)", pgm)
	}

	// Invalid spec -> 400.
	resp, err = ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"app":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec -> %d, want 400", resp.StatusCode)
	}

	// Unknown job -> 404.
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/ghost-000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job -> %d, want 404", resp.StatusCode)
	}

	// Healthz.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz -> %d", resp.StatusCode)
	}

	// Metrics exposition includes the serve counters.
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc = bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "serve_jobs_accepted") {
		t.Error("/metrics missing serve_jobs_accepted")
	}
}

// TestHTTPQueueShed pins the 429 + Retry-After wire behavior.
func TestHTTPQueueShed(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 1
	s := newServer(t, cfg) // unstarted: queue never drains
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submit := func() *http.Response {
		body, _ := json.Marshal(testSpec())
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit -> %d", resp.StatusCode)
	}
	resp := submit()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit -> %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After %q, want positive seconds", ra)
	}
}

// TestAttemptPanicFailsOnlyThatJob pins the containment boundary: a
// panicking attempt becomes one failed job, and the daemon keeps
// serving every other job.
func TestAttemptPanicFailsOnlyThatJob(t *testing.T) {
	cfg := testConfig(t)
	cfg.Shards = 1
	first := true
	cfg.preSolve = func(string, int) error {
		if first {
			first = false
			panic("injected attempt panic")
		}
		return nil
	}
	s := startServer(t, cfg)
	doomed, err := s.Submit("alice", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := s.Submit("bob", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, doomed, 30*time.Second); st.State != StateFailed {
		t.Errorf("panicked job state %s, want failed", st.State)
	}
	if st := waitTerminal(t, s, healthy, 30*time.Second); st.State != StateDone {
		t.Errorf("follow-up job state %s (error %q), want done — daemon must survive the panic", st.State, st.Error)
	}
	if got := counterValue(cfg.Recorder, "serve.attempt.panics"); got != 1 {
		t.Errorf("serve.attempt.panics = %d, want 1", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},                              // no state dir
		{StateDir: "x", QueueDepth: -1}, //
		{StateDir: "x", Shards: -1},
		{StateDir: "x", WorkerOverride: -1},
		{StateDir: "x", WorkerOverride: MaxSpecWorkers + 1},
		{StateDir: "x", CheckpointEverySweeps: -1},
		{StateDir: "x", Retry: backoff.Policy{MaxRetries: -1}},
		{StateDir: "x", DefaultLimits: TenantLimits{RatePerSec: -1}},
		{StateDir: "x", Tenants: map[string]TenantLimits{"bad name!": {}}},
		{StateDir: "x", Tenants: map[string]TenantLimits{"ok": {Burst: -1}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("bad[%d]: %v, want ErrInvalidConfig", i, err)
		}
	}
	if err := (Config{StateDir: "x"}).Validate(); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestJobSpecValidate(t *testing.T) {
	bad := []func(*JobSpec){
		func(sp *JobSpec) { sp.App = "mining" },
		func(sp *JobSpec) { sp.Backend = "gpu" },
		func(sp *JobSpec) { sp.Size = 4 },
		func(sp *JobSpec) { sp.Size = MaxSpecSize + 1 },
		func(sp *JobSpec) { sp.Labels = 1 },
		func(sp *JobSpec) { sp.Iterations = MaxSpecIterations + 1 },
		func(sp *JobSpec) { sp.Workers = -1 },
		func(sp *JobSpec) { sp.Workers = MaxSpecWorkers + 1 },
		func(sp *JobSpec) { sp.DeadlineMS = -5 },
		func(sp *JobSpec) { sp.Faults = "sweep:1 unit:0 stuck-max" }, // faults need rsu
		func(sp *JobSpec) { sp.FaultPolicy = "wish-harder" },
	}
	for i, mut := range bad {
		sp := testSpec()
		mut(&sp)
		if err := sp.Validate(); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("bad[%d]: %v, want ErrInvalidSpec", i, err)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("test spec rejected: %v", err)
	}
	if err := (JobSpec{}).Validate(); err != nil {
		t.Errorf("zero spec (all defaults) rejected: %v", err)
	}
}
