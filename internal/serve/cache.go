package serve

import (
	"sync"

	"repro/internal/apps"
)

// appCache is the LRU of built applications with Compile()d potential
// tables, keyed by JobSpec.ModelKey. The serving assumption (ROADMAP
// item 1) is many users, few distinct models: synthesizing the scene
// and materializing the tables dominates small solves, so sequential
// jobs against the same model should pay it once.
//
// Instances are *checked out*, not shared: a Get removes the instance
// from the cache and hands the caller exclusive ownership for the
// duration of the solve (models carry mutable compiled-table state —
// anneal retunes the rate LUT in place — so concurrent sharing would
// race). Put returns it. Two concurrent jobs on the same model simply
// build a second instance; the steady-state win is the sequential case.
type appCache struct {
	mu      sync.Mutex
	max     int
	idle    map[string][]apps.App
	order   []string // key LRU, least recent first; one entry per idle instance
	hits    int64
	misses  int64
	evicted int64
}

func newAppCache(max int) *appCache {
	return &appCache{max: max, idle: map[string][]apps.App{}}
}

// Get checks out an idle instance for key, or returns nil on a miss.
func (c *appCache) Get(key string) apps.App {
	if c == nil || c.max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pool := c.idle[key]
	if len(pool) == 0 {
		c.misses++
		return nil
	}
	app := pool[len(pool)-1]
	c.idle[key] = pool[:len(pool)-1]
	c.removeOrderEntry(key)
	c.hits++
	return app
}

// Put checks an instance back in, evicting the least-recently-used
// instance past capacity.
func (c *appCache) Put(key string, app apps.App) {
	if c == nil || c.max <= 0 || app == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idle[key] = append(c.idle[key], app)
	c.order = append(c.order, key)
	for len(c.order) > c.max {
		victim := c.order[0]
		c.order = c.order[1:]
		pool := c.idle[victim]
		if len(pool) == 0 {
			continue
		}
		c.idle[victim] = pool[:len(pool)-1]
		c.evicted++
	}
}

// removeOrderEntry drops one LRU entry for key (the most recent one —
// Get pops the most recently returned instance).
func (c *appCache) removeOrderEntry(key string) {
	for i := len(c.order) - 1; i >= 0; i-- {
		if c.order[i] == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *appCache) Stats() (hits, misses, evicted int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted
}
