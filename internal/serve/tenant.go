package serve

import (
	"fmt"
	"math"
	"regexp"
	"time"
)

// TenantLimits caps one tenant's slice of the server. A flooding tenant
// exhausts its own token bucket and in-flight quota; the shared
// admission queue is touched only after both checks pass, so a quiet
// tenant keeps being admitted while a noisy one is shed with 429.
type TenantLimits struct {
	// RatePerSec is the sustained submission rate (token-bucket refill;
	// 0: unlimited).
	RatePerSec float64
	// Burst is the bucket depth (0: defaults to ceil(RatePerSec), min 1).
	Burst int
	// MaxInFlight caps the tenant's queued+running jobs (0: unlimited).
	MaxInFlight int
}

// Validate checks the limits, wrapping ErrInvalidConfig.
func (tl TenantLimits) Validate() error {
	if tl.RatePerSec < 0 || math.IsNaN(tl.RatePerSec) || math.IsInf(tl.RatePerSec, 0) {
		return fmt.Errorf("%w: tenant rate %g", ErrInvalidConfig, tl.RatePerSec)
	}
	if tl.Burst < 0 {
		return fmt.Errorf("%w: tenant burst %d < 0", ErrInvalidConfig, tl.Burst)
	}
	if tl.MaxInFlight < 0 {
		return fmt.Errorf("%w: tenant max-in-flight %d < 0", ErrInvalidConfig, tl.MaxInFlight)
	}
	return nil
}

// burst returns the effective bucket depth.
func (tl TenantLimits) burst() float64 {
	if tl.Burst > 0 {
		return float64(tl.Burst)
	}
	if tl.RatePerSec > 0 {
		return math.Max(1, math.Ceil(tl.RatePerSec))
	}
	return 1
}

// tenantName constrains tenant identifiers: they become path components
// of journal files and metric names, so the charset is locked down.
var tenantName = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// tenantState is one tenant's token bucket and in-flight quota. All
// access happens under the server mutex; time flows in through the
// server's injected clock (library code never reads the wall clock
// directly — the detrand discipline).
type tenantState struct {
	limits   TenantLimits
	tokens   float64
	last     time.Time
	inflight int
}

func newTenantState(tl TenantLimits, now time.Time) *tenantState {
	return &tenantState{limits: tl, tokens: tl.burst(), last: now}
}

// admit takes one token, refilled at RatePerSec since the last call.
// When the bucket is empty it reports how long until the next token —
// the Retry-After hint.
func (t *tenantState) admit(now time.Time) (ok bool, retryAfter time.Duration) {
	if t.limits.RatePerSec <= 0 {
		return true, 0
	}
	elapsed := now.Sub(t.last).Seconds()
	if elapsed > 0 {
		t.tokens = math.Min(t.limits.burst(), t.tokens+elapsed*t.limits.RatePerSec)
		t.last = now
	}
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	need := (1 - t.tokens) / t.limits.RatePerSec
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// quotaOK reports whether the tenant may hold one more in-flight job.
func (t *tenantState) quotaOK() bool {
	return t.limits.MaxInFlight == 0 || t.inflight < t.limits.MaxInFlight
}
