package serve

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// State is a job's position in the lifecycle state machine
// (DESIGN.md §14):
//
//	queued ──► running ──► done
//	  ▲           │ ├────► deadline-exceeded   (partial labels kept)
//	  │           │ ├────► failed              (permanent error)
//	  │           │ ├────► retry-wait ──► running (transient error,
//	  │           │ │                             backoff + jitter)
//	  │           │ └────► migrating ──► migrated (planned handoff to
//	  │           │                               the peer; DESIGN.md §15)
//	  │           └────► preempted             (drain/crash: checkpointed)
//	  └───────────────────── preempted jobs re-enter queued on restart
//
// done, deadline-exceeded, failed and migrated are terminal on this
// node; every accepted job reaches exactly one of them (the serve
// chaos test's invariant). A migrated job continues on the peer, which
// drives it to one of the other terminal states there.
type State string

// Job lifecycle states.
const (
	// StateQueued: accepted, journaled, waiting for a solver shard.
	StateQueued State = "queued"
	// StateRunning: a shard is sweeping the chain.
	StateRunning State = "running"
	// StateRetryWait: last attempt failed transiently; the job is
	// sitting out its backoff delay.
	StateRetryWait State = "retry-wait"
	// StatePreempted: the chain was checkpointed and parked by a drain
	// (or the status survived a crash); it resumes on restart.
	StatePreempted State = "preempted"
	// StateDone: completed; labels and digest are durable.
	StateDone State = "done"
	// StateExpired: the per-attempt deadline elapsed; the partial
	// labels and sweep count the chain reached are durable.
	StateExpired State = "deadline-exceeded"
	// StateFailed: a permanent error or exhausted retries.
	StateFailed State = "failed"
	// StateMigrating: a planned handoff is draining the chain to its
	// next sweep boundary and flushing replication to the peer.
	StateMigrating State = "migrating"
	// StateMigrated: execution was handed off to the peer (terminal on
	// this node; the job continues there from its replicated snapshot).
	StateMigrated State = "migrated"
)

// Terminal reports whether the state is final on this node.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateExpired, StateFailed, StateMigrated:
		return true
	}
	return false
}

// job is the in-memory side of one accepted job. The store holds the
// durable truth; job mirrors it for the HTTP layer plus the purely
// runtime parts (event stream, waiter wakeups).
type job struct {
	rec jobRecord

	mu     sync.Mutex
	status jobStatus
	// resumed records that at least one attempt in this process resumed
	// from a snapshot taken by an earlier incarnation.
	resumed bool
	// migrating asks the owning shard to hand the job off at its next
	// sweep boundary; migrated marks the handoff complete (frames for
	// the job stop replicating — the peer owns its status now).
	migrating bool
	migrated  bool
	// attemptCancel stops the in-flight solve attempt (if any) at its
	// next sweep boundary without touching the shard's run context.
	attemptCancel context.CancelFunc

	// queuedOnce guards recovery/adoption enqueue paths against double
	// submission to the shard queue. Guarded by Server.mu, not j.mu.
	queuedOnce bool

	// events is the job's NDJSON progress stream; reg is the per-job
	// registry feeding it (chain sweep counters, checkpoint events, and
	// the serve layer's job.state transitions).
	events *eventBuf
	reg    *obs.Registry
}

// setMigrating arms (or clears) the planned-handoff request.
func (j *job) setMigrating(v bool) {
	j.mu.Lock()
	j.migrating = v
	j.mu.Unlock()
}

func (j *job) isMigrating() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.migrating
}

// setMigrated marks the handoff complete; from here on the peer owns
// the job's status and this node must not replicate frames for it.
func (j *job) setMigrated() {
	j.mu.Lock()
	j.migrated = true
	j.mu.Unlock()
}

func (j *job) isMigrated() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.migrated
}

// setAttemptCancel publishes the in-flight attempt's cancel func (nil
// when no attempt is running).
func (j *job) setAttemptCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.attemptCancel = cancel
	j.mu.Unlock()
}

// cancelAttempt stops the in-flight attempt at its next sweep
// boundary, if one is running.
func (j *job) cancelAttempt() {
	j.mu.Lock()
	cancel := j.attemptCancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func newJob(rec jobRecord, status jobStatus) *job {
	j := &job{rec: rec, status: status, events: newEventBuf(maxEventBytes)}
	j.reg = obs.New()
	j.reg.StreamTo(obs.NewEventSink(j.events))
	return j
}

// Status returns a copy of the current status.
func (j *job) Status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// setState mutates the in-memory status under the job lock and returns
// the updated copy for persistence.
func (j *job) setState(mut func(*jobStatus)) jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	mut(&j.status)
	return j.status
}

// previewState applies mut to a copy of the current status without
// publishing it — the first half of Server.persist's publish ordering
// (journal and events first, in-memory state last).
func (j *job) previewState(mut func(*jobStatus)) jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	mut(&st)
	return st
}

// commitState publishes a previously previewed status.
func (j *job) commitState(st jobStatus) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}

// maxEventBytes bounds one job's buffered event stream; past it new
// events are counted but dropped, so a runaway chain cannot hold the
// server's memory hostage.
const maxEventBytes = 1 << 20

// eventBuf accumulates NDJSON lines and wakes streaming readers on
// every append. Closed when the job reaches a terminal state so
// followers drain and disconnect.
type eventBuf struct {
	mu      sync.Mutex
	buf     []byte
	max     int
	dropped int64
	closed  bool
	wake    chan struct{}
}

func newEventBuf(max int) *eventBuf {
	return &eventBuf{max: max, wake: make(chan struct{})}
}

// Write implements io.Writer for the job's EventSink.
func (b *eventBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	if len(b.buf)+len(p) > b.max {
		b.dropped++
	} else {
		b.buf = append(b.buf, p...)
	}
	close(b.wake)
	b.wake = make(chan struct{})
	b.mu.Unlock()
	return len(p), nil
}

// Close marks the stream complete and wakes all followers.
func (b *eventBuf) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.wake)
		b.wake = make(chan struct{})
	}
	b.mu.Unlock()
}

// snapshot returns the bytes past off, whether the stream is complete,
// and a channel that is closed on the next append.
func (b *eventBuf) snapshot(off int) ([]byte, bool, <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var chunk []byte
	if off < len(b.buf) {
		chunk = append([]byte(nil), b.buf[off:]...)
	}
	return chunk, b.closed, b.wake
}
