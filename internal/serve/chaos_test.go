package serve

// The serving chaos harness, in the style of internal/checkpoint/
// chaostest: the test binary re-executes itself as a real rsuserve-
// shaped daemon (SERVE_CHAOS_MODE=server), the parent floods it with
// jobs over HTTP from two tenants, SIGKILLs it at a seeded-random point
// partway through the stream, restarts it on the same state directory
// at a different worker count, and then holds the service to the
// acceptance invariant: every accepted job ends in exactly one of
// {completed, resumed-and-completed, deadline-exceeded-with-partial},
// and every completed chain is byte-identical (digest) to an
// uninterrupted golden run.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve/migrate"
)

func TestMain(m *testing.M) {
	if os.Getenv("SERVE_CHAOS_MODE") == "server" {
		os.Exit(runChaosServer())
	}
	os.Exit(m.Run())
}

// runChaosServer is the subprocess: a full Server with its HTTP surface
// on an ephemeral port. It prints "ADDR <host:port>" for the parent and
// then blocks until killed — SIGKILL is the only way it exits, which is
// the point.
func runChaosServer() int {
	workers, _ := strconv.Atoi(os.Getenv("SERVE_CHAOS_WORKERS"))
	cfg := Config{
		StateDir:              os.Getenv("SERVE_CHAOS_STATE"),
		QueueDepth:            64,
		Shards:                2,
		WorkerOverride:        workers,
		CheckpointEverySweeps: 1,
		BackoffSeed:           7,
		Recorder:              obs.New(),
	}
	// The failover chaos matrix runs the same daemon as a replicating
	// primary (PEER set) or a hot standby (STANDBY=1).
	if peer, standby := os.Getenv("SERVE_CHAOS_PEER"), os.Getenv("SERVE_CHAOS_STANDBY") == "1"; peer != "" || standby {
		hbMS, _ := strconv.Atoi(os.Getenv("SERVE_CHAOS_HB_MS"))
		if hbMS == 0 {
			hbMS = 150
		}
		cfg.Migrate = &migrate.Config{
			NodeID:         os.Getenv("SERVE_CHAOS_NODE"),
			Peer:           peer,
			Standby:        standby,
			LeaseTTL:       3 * time.Duration(hbMS) * time.Millisecond,
			HeartbeatEvery: time.Duration(hbMS) * time.Millisecond,
			MissLimit:      3,
		}
	}
	s, err := New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos server:", err)
		return 1
	}
	if err := s.Start(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "chaos server:", err)
		return 1
	}
	addr, _, err := obs.ServeHandler("127.0.0.1:0", s.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos server:", err)
		return 1
	}
	fmt.Printf("ADDR %s\n", addr)
	select {}
}

// startChaosServer launches the subprocess and returns its command and
// bound address.
func startChaosServer(t *testing.T, stateDir string, workers int, extraEnv ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"SERVE_CHAOS_MODE=server",
		"SERVE_CHAOS_STATE="+stateDir,
		"SERVE_CHAOS_WORKERS="+strconv.Itoa(workers),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addrCh <- a
				// Keep draining so the child never blocks on stdout.
				for sc.Scan() {
				}
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("chaos server did not report its address")
		return nil, ""
	}
}

func httpSubmit(t *testing.T, addr, tenant string, spec JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", "http://"+addr+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set(tenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit to %s: %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit -> %d: %s", resp.StatusCode, data)
	}
	var view statusView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view.ID
}

func httpStatus(t *testing.T, addr, id string) (statusView, error) {
	t.Helper()
	resp, err := http.DefaultClient.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return statusView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusView{}, fmt.Errorf("status %s -> %d", id, resp.StatusCode)
	}
	var view statusView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return statusView{}, err
	}
	return view, nil
}

// chaosSpecs is the job stream: eight digest-comparable jobs over the
// four applications plus one whose wall-clock deadline cannot fit its
// chain budget (it must surface as deadline-exceeded with a partial).
func chaosSpecs() []JobSpec {
	specs := make([]JobSpec, 0, 9)
	apps := []string{"segmentation", "stereo", "motion", "restoration"}
	for i := 0; i < 8; i++ {
		specs = append(specs, JobSpec{
			App:        apps[i%len(apps)],
			Size:       16,
			Labels:     3,
			Iterations: 60 + 10*i,
			BurnIn:     10,
			Seed:       uint64(1000 + i),
			SceneSeed:  uint64(40 + i%3),
		})
	}
	specs = append(specs, JobSpec{
		App: "segmentation", Size: 16, Labels: 3,
		Iterations: 1 << 19, BurnIn: 1, Seed: 2000, SceneSeed: 41,
		DeadlineMS: 300,
	})
	return specs
}

func TestServeChaosSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos matrix skipped in -short mode")
	}
	specs := chaosSpecs()
	deadlineIdx := len(specs) - 1

	// Golden digests: an uninterrupted in-process server at W=1.
	goldenCfg := testConfig(t)
	goldenCfg.WorkerOverride = 1
	golden := startServer(t, goldenCfg)
	goldenDigest := make([]string, len(specs)-1)
	for i, spec := range specs[:deadlineIdx] {
		id, err := golden.Submit("golden", spec)
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, golden, id, 120*time.Second)
		if st.State != StateDone {
			t.Fatalf("golden job %d: %s (%s)", i, st.State, st.Error)
		}
		goldenDigest[i] = st.Digest
	}

	// Run 1: W=2 server, jobs from two tenants, SIGKILL at a seeded-
	// random point once the stream is demonstrably mid-flight.
	state := t.TempDir()
	srv1, addr1 := startChaosServer(t, state, 2)
	killed := false
	defer func() {
		if !killed {
			_ = srv1.Process.Kill()
		}
	}()
	ids := make([]string, len(specs))
	tenants := make([]string, len(specs))
	for i, spec := range specs {
		tenants[i] = "alice"
		if i%2 == 1 {
			tenants[i] = "bob"
		}
		ids[i] = httpSubmit(t, addr1, tenants[i], spec)
	}

	// The kill trigger: wait until at least killAfter jobs have a durable
	// chain snapshot (the chain passed a sweep boundary in this
	// incarnation), then SIGKILL mid-stream. The threshold is drawn from
	// a seeded stream — randomized offsets, reproducible schedule.
	src := rng.New(0xC4A05)
	killAfter := 2 + src.Intn(3)
	ckptDir := filepath.Join(state, "ckpt")
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(killDeadline) {
			t.Fatal("chaos stream never reached the kill threshold")
		}
		entries, _ := os.ReadDir(ckptDir)
		live := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".ckpt") {
				live++
			}
		}
		if live >= killAfter {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	_ = srv1.Wait()

	// Run 2: same state directory, W=3. Recovery must requeue every
	// non-terminal job and drive all of them to a terminal state.
	srv2, addr2 := startChaosServer(t, state, 3)
	defer func() { _ = srv2.Process.Kill() }()

	final := make([]statusView, len(ids))
	allDeadline := time.Now().Add(180 * time.Second)
	for i, id := range ids {
		for {
			if time.Now().After(allDeadline) {
				t.Fatalf("job %s not terminal after restart (last: %+v)", id, final[i])
			}
			view, err := httpStatus(t, addr2, id)
			if err == nil {
				final[i] = view
				if view.Terminal {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The acceptance invariant: every accepted job ends in exactly one of
	// completed / resumed-and-completed (digest-identical to golden) /
	// deadline-exceeded-with-partial.
	for i, view := range final {
		if i == deadlineIdx {
			if view.State != StateExpired {
				t.Errorf("deadline job: state %s (error %q), want deadline-exceeded", view.State, view.Error)
				continue
			}
			if view.Sweeps <= 0 {
				t.Errorf("deadline job: partial sweeps %d, want > 0", view.Sweeps)
			}
			continue
		}
		if view.State != StateDone {
			t.Errorf("job %d (%s): state %s (error %q), want done", i, view.ID, view.State, view.Error)
			continue
		}
		if view.Sweeps != specs[i].Iterations {
			t.Errorf("job %d: sweeps %d, want the full budget %d", i, view.Sweeps, specs[i].Iterations)
		}
		if view.Digest != goldenDigest[i] {
			t.Errorf("job %d (%s): digest %s != golden %s — resume is not byte-exact",
				i, view.ID, view.Digest, goldenDigest[i])
		}
	}

	// Labels of the deadline-exceeded job are fetchable partials.
	resp, err := http.DefaultClient.Get("http://" + addr2 + "/v1/jobs/" + ids[deadlineIdx] + "/labels")
	if err != nil {
		t.Fatal(err)
	}
	pgm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.HasPrefix(pgm, []byte("P5")) {
		t.Errorf("deadline job labels: code %d, %d bytes", resp.StatusCode, len(pgm))
	}

	// The restarted server's metrics must admit it recovered work.
	resp, err = http.DefaultClient.Get("http://" + addr2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "serve_jobs_recovered") {
		t.Error("/metrics after restart missing serve_jobs_recovered")
	}
}
