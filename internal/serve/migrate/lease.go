package migrate

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// leaseRecord is the durable ownership fact both nodes keep: the
// highest lease epoch this node has granted, acquired, or seized, and
// which node holds it. Epoch 0 means no lease has ever existed.
type leaseRecord struct {
	Epoch uint64 `json:"epoch"`
	Node  string `json:"node"`
}

// ledger persists the lease record under <stateDir>/cluster/lease.json
// with the same tmp+fsync+rename discipline as the job journal. The
// fencing guarantee rests on it: epochs observed from the ledger never
// move backwards, even across a SIGKILL at any instant.
type ledger struct {
	path string

	mu  sync.Mutex
	rec leaseRecord
}

func openLedger(stateDir string) (*ledger, error) {
	dir := filepath.Join(stateDir, "cluster")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("migrate: ledger dir: %w", err)
	}
	l := &ledger{path: filepath.Join(dir, "lease.json")}
	data, err := os.ReadFile(l.path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return l, nil
	case err != nil:
		return nil, fmt.Errorf("migrate: ledger: %w", err)
	}
	if err := json.Unmarshal(data, &l.rec); err != nil {
		return nil, fmt.Errorf("migrate: ledger %s: %w", l.path, err)
	}
	return l, nil
}

// Current returns the last committed lease record.
func (l *ledger) Current() leaseRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rec
}

// Commit durably replaces the lease record. Epoch regressions are a
// protocol violation and are refused.
func (l *ledger) Commit(rec leaseRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Epoch < l.rec.Epoch {
		return fmt.Errorf("migrate: ledger epoch regression %d -> %d", l.rec.Epoch, rec.Epoch)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := atomicWrite(l.path, data); err != nil {
		return fmt.Errorf("migrate: ledger: %w", err)
	}
	l.rec = rec
	return nil
}

// atomicWrite writes data via tmp+fsync+rename — a crash at any
// instant leaves either the old or the new complete file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
