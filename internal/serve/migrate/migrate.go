// Package migrate is the peer-to-peer replication and failover layer
// for the serving daemon: a primary rsuserve streams every job's
// journal frames (record, status, labels) and chain snapshots to a
// configured hot standby, job ownership is governed by epoch-numbered
// leases, and a heartbeat miss-count failure detector promotes the
// standby when the primary goes silent — resuming every in-flight
// chain bit-exactly from its last replicated sweep boundary.
//
// The protocol, in the order a two-node cluster meets it:
//
//   - Lease. The primary proposes epoch = (its durable ledger) + 1 to
//     the standby's /v1/repl/lease. The standby grants the first
//     proposal above its own ledger epoch, persists the grant, and
//     refuses anything at or below it with the current epoch (the
//     primary re-proposes current+1). Both sides fsync the ledger
//     before acting on it, so epochs never move backwards across
//     crashes.
//   - Replication. Every frame the primary sends carries its lease
//     epoch in the X-Lease-Epoch header. Snapshots go chunked with
//     resume-from-offset: the snapshot file's CRC-64 trailer is the
//     generation ID, the standby reports how many bytes of that
//     generation it already holds, and the sender continues from
//     there. The assembled bytes are validated with the ordinary
//     checkpoint decoder before installation, so a half-replicated or
//     damaged snapshot can never be adopted.
//   - Failure detection. The primary heartbeats at HeartbeatEvery;
//     the standby counts beat-free periods and takes over after
//     MissLimit consecutive misses: it advances its ledger epoch past
//     the dead primary's lease, marks itself owner, and recovers every
//     replicated job.
//   - Fencing. After takeover — or any newer lease — frames carrying a
//     stale epoch are rejected with 409 and lease requests with 410.
//     A resurrected primary that believed it still owned its jobs
//     cannot commit one byte of state to the standby; it observes the
//     refusal and fences itself (stops running jobs entirely).
//
// The serving layer on each side wires this package in through small
// hook interfaces (Hooks on the standby, callbacks on the primary), so
// migrate deals only in bytes, paths and epochs and stays free of the
// job lifecycle.
package migrate

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/serve/backoff"
)

// ErrInvalidConfig is wrapped by every configuration-validation error.
var ErrInvalidConfig = errors.New("migrate: invalid config")

// ErrFenced reports that the peer holds (or granted) a newer lease
// epoch: this node's authority over its jobs is gone and it must stop
// committing state.
var ErrFenced = errors.New("migrate: fenced by newer lease epoch")

// Config shapes both sides of the replication pair. A node is a
// primary (Peer set), a standby (Standby true), or neither; never
// both.
type Config struct {
	// NodeID identifies this node in the lease ledger. It must be
	// stable across restarts of the same node (the standby recognizes
	// its own takeover by finding itself as the ledger owner) and
	// distinct between the two nodes. Required.
	NodeID string
	// Peer is the standby's base URL ("http://host:port"); setting it
	// makes this node a primary.
	Peer string
	// Standby makes this node the replication receiver and failover
	// target.
	Standby bool
	// LeaseTTL is the ownership lease duration; HeartbeatEvery and the
	// miss budget derive from it (default 3s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the primary's heartbeat cadence and the
	// standby's liveness-check tick (default LeaseTTL/3).
	HeartbeatEvery time.Duration
	// MissLimit is the number of consecutive beat-free periods after
	// which the standby takes over (default 3).
	MissLimit int
	// ChunkBytes bounds one snapshot-replication chunk (default 256 KiB).
	ChunkBytes int
	// Retry is the per-frame send retry policy (default: 4 retries,
	// 50ms base, 1s cap, 0.5 jitter). Exhausting it re-queues the frame
	// and keeps trying — a down standby degrades replication lag, not
	// primary availability.
	Retry backoff.Policy
	// JitterSeed derives the replication retry jitter stream (disjoint
	// from every chain seed by construction: chains never see it).
	JitterSeed uint64
	// Now supplies the wall clock (default time.Now).
	Now func() time.Time
	// Sleep waits out backoff delays (default backoff.SleepTimer).
	Sleep backoff.SleepFunc
	// Client issues replication HTTP requests (default: 10s timeout).
	Client *http.Client
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = cfg.LeaseTTL / 3
	}
	if cfg.MissLimit == 0 {
		cfg.MissLimit = 3
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = 256 << 10
	}
	if cfg.Retry.Base == 0 && cfg.Retry.MaxRetries == 0 {
		cfg.Retry = backoff.Policy{
			Base:       50 * time.Millisecond,
			Cap:        time.Second,
			Factor:     2,
			Jitter:     0.5,
			MaxRetries: 4,
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = backoff.SleepTimer
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return cfg
}

// Validate checks the configuration, wrapping ErrInvalidConfig.
func (cfg Config) Validate() error {
	if cfg.NodeID == "" {
		return fmt.Errorf("%w: NodeID is required", ErrInvalidConfig)
	}
	if cfg.Peer != "" && cfg.Standby {
		return fmt.Errorf("%w: a node is a primary (Peer) or a standby (Standby), not both", ErrInvalidConfig)
	}
	if cfg.Peer == "" && !cfg.Standby {
		return fmt.Errorf("%w: neither Peer nor Standby set", ErrInvalidConfig)
	}
	if cfg.LeaseTTL < 0 {
		return fmt.Errorf("%w: LeaseTTL %v < 0", ErrInvalidConfig, cfg.LeaseTTL)
	}
	if cfg.HeartbeatEvery < 0 {
		return fmt.Errorf("%w: HeartbeatEvery %v < 0", ErrInvalidConfig, cfg.HeartbeatEvery)
	}
	if cfg.MissLimit < 0 {
		return fmt.Errorf("%w: MissLimit %d < 0", ErrInvalidConfig, cfg.MissLimit)
	}
	if cfg.ChunkBytes < 0 {
		return fmt.Errorf("%w: ChunkBytes %d < 0", ErrInvalidConfig, cfg.ChunkBytes)
	}
	if err := cfg.Retry.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return nil
}

// epochHeader carries the sender's lease epoch on every replication
// frame; the receiver fences anything stale.
const epochHeader = "X-Lease-Epoch"

// Wire bodies (JSON).
type leaseMsg struct {
	// Node is the requester's NodeID.
	Node string `json:"node"`
	// Epoch is the proposed (request) or granted/current (response)
	// lease epoch.
	Epoch uint64 `json:"epoch"`
}

// offsetMsg is the snapshot-offset probe response: how many bytes of
// the named generation the standby already holds, and whether that
// generation is fully installed.
type offsetMsg struct {
	Offset   int64 `json:"offset"`
	Complete bool  `json:"complete"`
}
