package migrate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve/backoff"
)

// replItem is one unit of replication work: a journal frame carrying
// its bytes, or a snapshot send identified by job (the file is read at
// send time, so rapid checkpoint cadences coalesce into one transfer
// of the newest generation).
type replItem struct {
	kind string // "record" | "status" | "labels" | "snapshot"
	job  string
	data []byte
}

// Primary is the replication sender: an asynchronous, ordered frame
// queue drained by Run's sender loop, a heartbeat stream keeping the
// standby's failure detector fed, and the lease that makes every byte
// it sends fencable. Enqueue methods never block the solve path;
// Flush provides the synchronous barrier planned handoffs need.
type Primary struct {
	cfg      Config
	reg      *obs.Registry
	led      *ledger
	snapPath func(id string) string
	onLeased func(epoch uint64)
	onFenced func()

	mu       sync.Mutex
	frames   []replItem
	dirty    map[string]bool
	order    []string
	inflight int
	epoch    uint64
	leased   bool
	fenced   bool
	notify   chan struct{}
	change   chan struct{}
}

// NewPrimary opens the node's lease ledger under stateDir and returns
// the sender. snapPath maps a job ID to its local snapshot file;
// onLeased fires once when the standby grants ownership (the serving
// layer activates then); onFenced fires once if the standby ever
// refuses this node's epoch (the serving layer must stop running
// jobs). Both callbacks run on replication goroutines.
func NewPrimary(stateDir string, cfg Config, reg *obs.Registry, snapPath func(id string) string,
	onLeased func(epoch uint64), onFenced func()) (*Primary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.New()
	}
	led, err := openLedger(stateDir)
	if err != nil {
		return nil, err
	}
	return &Primary{
		cfg:      cfg,
		reg:      reg,
		led:      led,
		snapPath: snapPath,
		onLeased: onLeased,
		onFenced: onFenced,
		dirty:    map[string]bool{},
		notify:   make(chan struct{}, 1),
		change:   make(chan struct{}),
	}, nil
}

// Epoch returns the currently held lease epoch (0 before the grant).
func (p *Primary) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Fenced reports whether the peer refused this node's authority.
func (p *Primary) Fenced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fenced
}

// Record enqueues a job-record frame.
func (p *Primary) Record(id string, data []byte) { p.enqueue(replItem{kind: "record", job: id, data: data}) }

// Status enqueues a job-status frame.
func (p *Primary) Status(id string, data []byte) { p.enqueue(replItem{kind: "status", job: id, data: data}) }

// Labels enqueues a terminal-labels frame.
func (p *Primary) Labels(id string, data []byte) { p.enqueue(replItem{kind: "labels", job: id, data: data}) }

// Snapshot marks the job's chain snapshot dirty; the sender ships the
// newest on-disk generation. Safe to call from checkpoint-save hooks —
// it never blocks and repeated marks coalesce.
func (p *Primary) Snapshot(id string) {
	p.mu.Lock()
	if p.fenced {
		p.mu.Unlock()
		return
	}
	if !p.dirty[id] {
		p.dirty[id] = true
		p.order = append(p.order, id)
		p.reg.GaugeAdd("serve.repl.pending", 1)
	}
	p.signalLocked()
	p.mu.Unlock()
}

func (p *Primary) enqueue(it replItem) {
	p.mu.Lock()
	if p.fenced {
		p.mu.Unlock()
		obs.Add(p.reg, "serve.repl.dropped_frames", 1)
		return
	}
	p.frames = append(p.frames, it)
	p.reg.GaugeAdd("serve.repl.pending", 1)
	p.signalLocked()
	p.mu.Unlock()
}

// signalLocked nudges the sender; broadcastLocked wakes Flush waiters.
func (p *Primary) signalLocked() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

func (p *Primary) broadcastLocked() {
	close(p.change)
	p.change = make(chan struct{})
}

// Flush blocks until every enqueued frame and dirty snapshot has been
// delivered, the node is fenced (ErrFenced), or ctx expires. It is the
// barrier a planned handoff runs before transferring execution.
func (p *Primary) Flush(ctx context.Context) error {
	for {
		p.mu.Lock()
		if p.fenced {
			p.mu.Unlock()
			return ErrFenced
		}
		if len(p.frames) == 0 && len(p.order) == 0 && p.inflight == 0 {
			p.mu.Unlock()
			return nil
		}
		ch := p.change
		p.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Run acquires the lease (retrying until the standby answers), reports
// it through onLeased, and then drives the heartbeat stream and the
// sender loop until ctx dies or the node is fenced.
func (p *Primary) Run(ctx context.Context) error {
	if err := p.acquireLease(ctx); err != nil {
		return err
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		p.heartbeatLoop(ctx)
	}()
	p.senderLoop(ctx)
	<-hbDone
	if p.Fenced() {
		return ErrFenced
	}
	return nil
}

// acquireLease proposes epochs until one is granted. A refusal with a
// higher current epoch re-proposes current+1; a 410 means the standby
// has seized ownership and this node fences itself permanently.
func (p *Primary) acquireLease(ctx context.Context) error {
	propose := p.led.Current().Epoch + 1
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		code, granted, err := p.requestLease(ctx, propose)
		switch {
		case err != nil:
			obs.Add(p.reg, "serve.repl.errors", 1)
			if serr := p.cfg.Sleep(ctx, p.cfg.HeartbeatEvery); serr != nil {
				return serr
			}
		case code == http.StatusOK:
			if cerr := p.led.Commit(leaseRecord{Epoch: granted, Node: p.cfg.NodeID}); cerr != nil {
				return cerr
			}
			p.mu.Lock()
			p.epoch = granted
			p.leased = true
			p.mu.Unlock()
			p.reg.Gauge("serve.migrate.lease_epoch", float64(granted))
			obs.Add(p.reg, "serve.migrate.leases_acquired", 1)
			if p.onLeased != nil {
				p.onLeased(granted)
			}
			return nil
		case code == http.StatusConflict:
			propose = granted + 1
		case code == http.StatusGone:
			p.fence()
			return ErrFenced
		default:
			obs.Add(p.reg, "serve.repl.errors", 1)
			if serr := p.cfg.Sleep(ctx, p.cfg.HeartbeatEvery); serr != nil {
				return serr
			}
		}
	}
}

// requestLease performs one lease POST, returning the HTTP code and
// the epoch the standby reported (granted on 200, current on 409).
func (p *Primary) requestLease(ctx context.Context, propose uint64) (int, uint64, error) {
	body, err := json.Marshal(leaseMsg{Node: p.cfg.NodeID, Epoch: propose})
	if err != nil {
		return 0, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.Peer+"/v1/repl/lease", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer drainClose(resp)
	var msg leaseMsg
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&msg)
	return resp.StatusCode, msg.Epoch, nil
}

// heartbeatLoop keeps the standby's failure detector fed. Send errors
// are counted but not retried — a missed beat is exactly the signal
// the detector exists to notice. A fencing response ends the loop.
func (p *Primary) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(p.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		body, err := json.Marshal(leaseMsg{Node: p.cfg.NodeID, Epoch: p.Epoch()})
		if err != nil {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.Peer+"/v1/repl/heartbeat", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(epochHeader, strconv.FormatUint(p.Epoch(), 10))
		resp, err := p.cfg.Client.Do(req)
		if err != nil {
			obs.Add(p.reg, "serve.migrate.heartbeat_errors", 1)
			continue
		}
		code := resp.StatusCode
		drainClose(resp)
		switch {
		case code == http.StatusNoContent || code == http.StatusOK:
			obs.Add(p.reg, "serve.migrate.heartbeats", 1)
		case code == http.StatusConflict || code == http.StatusGone:
			p.fence()
			return
		default:
			obs.Add(p.reg, "serve.migrate.heartbeat_errors", 1)
		}
	}
}

// senderLoop drains the frame queue in order. A delivery that exhausts
// its retry budget is requeued at the front and retried after a capped
// pause: a down standby costs replication lag, never primary
// availability, and never reorders a job's record/status stream.
func (p *Primary) senderLoop(ctx context.Context) {
	src := rng.New(p.cfg.JitterSeed)
	for {
		if ctx.Err() != nil || p.Fenced() {
			return
		}
		it, ok := p.next()
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-p.notify:
			}
			continue
		}
		var err error
		if it.kind == "snapshot" {
			err = p.sendSnapshot(ctx, src, it.job)
		} else {
			err = p.putFrame(ctx, src, it)
		}
		p.finish(it, err)
		if err != nil && !p.Fenced() && ctx.Err() == nil {
			obs.Add(p.reg, "serve.repl.errors", 1)
			_ = p.cfg.Sleep(ctx, p.cfg.Retry.Cap)
		}
	}
}

// next pops the head item: frames in FIFO order first, then dirty
// snapshots.
func (p *Primary) next() (replItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fenced {
		return replItem{}, false
	}
	if len(p.frames) > 0 {
		it := p.frames[0]
		p.frames = p.frames[1:]
		p.inflight = 1
		return it, true
	}
	if len(p.order) > 0 {
		id := p.order[0]
		p.order = p.order[1:]
		delete(p.dirty, id)
		p.inflight = 1
		return replItem{kind: "snapshot", job: id}, true
	}
	return replItem{}, false
}

// finish settles one delivery attempt: success retires the item,
// failure (when not fenced) requeues it at the front.
func (p *Primary) finish(it replItem, err error) {
	p.mu.Lock()
	p.inflight = 0
	switch {
	case p.fenced:
		// fence() already dropped the queue and zeroed the gauge.
	case err == nil:
		p.reg.GaugeAdd("serve.repl.pending", -1)
	case it.kind == "snapshot":
		if !p.dirty[it.job] {
			p.dirty[it.job] = true
			p.order = append([]string{it.job}, p.order...)
		} else {
			// Re-marked while in flight: already queued, drop the
			// duplicate pending count.
			p.reg.GaugeAdd("serve.repl.pending", -1)
		}
	default:
		p.frames = append([]replItem{it}, p.frames...)
	}
	p.broadcastLocked()
	p.mu.Unlock()
}

// fence records the loss of authority: the queue is dropped (nothing
// this node sends will ever be accepted again), and the serving layer
// is told to stop committing state.
func (p *Primary) fence() {
	p.mu.Lock()
	if p.fenced {
		p.mu.Unlock()
		return
	}
	p.fenced = true
	dropped := len(p.frames) + len(p.order) + p.inflight
	p.frames = nil
	p.order = nil
	p.dirty = map[string]bool{}
	p.broadcastLocked()
	p.signalLocked()
	p.mu.Unlock()
	if dropped > 0 {
		obs.Add(p.reg, "serve.repl.dropped_frames", int64(dropped))
	}
	p.reg.Gauge("serve.repl.pending", 0)
	obs.Add(p.reg, "serve.migrate.fenced", 1)
	if p.onFenced != nil {
		p.onFenced()
	}
}

// putFrame delivers one journal frame with the retry policy.
func (p *Primary) putFrame(ctx context.Context, src *rng.Source, it replItem) error {
	url := p.cfg.Peer + "/v1/repl/jobs/" + it.job + "/" + it.kind
	return backoff.Do(ctx, p.retryPolicy(), src, p.cfg.Sleep, func(ctx context.Context, _ int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(it.data))
		if err != nil {
			return backoff.Permanent(err)
		}
		req.Header.Set(epochHeader, strconv.FormatUint(p.Epoch(), 10))
		resp, err := p.cfg.Client.Do(req)
		if err != nil {
			return err
		}
		code := resp.StatusCode
		drainClose(resp)
		switch {
		case code == http.StatusNoContent || code == http.StatusOK:
			obs.Add(p.reg, "serve.repl.frames", 1)
			obs.Add(p.reg, "serve.repl.bytes", int64(len(it.data)))
			return nil
		case code == http.StatusConflict || code == http.StatusGone:
			p.fence()
			return backoff.Permanent(ErrFenced)
		default:
			return fmt.Errorf("migrate: %s frame for %s -> %d", it.kind, it.job, code)
		}
	})
}

// retryPolicy returns the frame retry policy with ErrFenced permanent.
func (p *Primary) retryPolicy() backoff.Policy {
	pol := p.cfg.Retry
	pol.Permanent = append(append([]error(nil), pol.Permanent...), ErrFenced)
	return pol
}

// sendSnapshot ships the job's current on-disk snapshot generation,
// resuming from whatever byte offset of that generation the standby
// already holds. The snapshot file is opened once per attempt: saves
// replace it by rename, so the open handle always reads one complete
// generation even while newer ones land.
func (p *Primary) sendSnapshot(ctx context.Context, src *rng.Source, job string) error {
	return backoff.Do(ctx, p.retryPolicy(), src, p.cfg.Sleep, func(ctx context.Context, _ int) error {
		sr, err := checkpoint.OpenStream(p.snapPath(job))
		switch {
		case errors.Is(err, os.ErrNotExist), errors.Is(err, checkpoint.ErrCorrupt):
			// Nothing sendable: the snapshot was dropped (corrupt-retry
			// path) or damaged locally; the solve layer owns recovery.
			return nil
		case err != nil:
			return err
		}
		defer sr.Close()
		gen := fmt.Sprintf("%016x", sr.CRC())
		off, complete, err := p.probeOffset(ctx, job, gen)
		if err != nil {
			return err
		}
		if complete {
			return nil
		}
		if off > 0 {
			obs.Add(p.reg, "serve.repl.snapshot_resumes", 1)
		}
		buf := make([]byte, p.cfg.ChunkBytes)
		for off < sr.Size() {
			n, rerr := sr.ReadChunk(off, buf)
			if rerr != nil {
				return rerr
			}
			final := off+int64(n) >= sr.Size()
			resync, perr := p.putChunk(ctx, job, gen, off, final, buf[:n])
			if perr != nil {
				return perr
			}
			if resync >= 0 {
				off = resync
				continue
			}
			off += int64(n)
			obs.Add(p.reg, "serve.repl.bytes", int64(n))
		}
		obs.Add(p.reg, "serve.repl.snapshots_sent", 1)
		return nil
	})
}

// probeOffset asks the standby how much of generation gen it holds.
func (p *Primary) probeOffset(ctx context.Context, job, gen string) (int64, bool, error) {
	url := p.cfg.Peer + "/v1/repl/jobs/" + job + "/snapshot/offset?gen=" + gen
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, false, backoff.Permanent(err)
	}
	req.Header.Set(epochHeader, strconv.FormatUint(p.Epoch(), 10))
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer drainClose(resp)
	switch {
	case resp.StatusCode == http.StatusOK:
		var msg offsetMsg
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&msg); derr != nil {
			return 0, false, derr
		}
		return msg.Offset, msg.Complete, nil
	case resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusGone:
		p.fence()
		return 0, false, backoff.Permanent(ErrFenced)
	default:
		return 0, false, fmt.Errorf("migrate: offset probe for %s -> %d", job, resp.StatusCode)
	}
}

// putChunk delivers one snapshot chunk. A 416 reports the offset the
// standby wants next (returned as resync >= 0); other failures error.
func (p *Primary) putChunk(ctx context.Context, job, gen string, off int64, final bool, chunk []byte) (int64, error) {
	fin := "0"
	if final {
		fin = "1"
	}
	url := fmt.Sprintf("%s/v1/repl/jobs/%s/snapshot?gen=%s&offset=%d&final=%s", p.cfg.Peer, job, gen, off, fin)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(chunk))
	if err != nil {
		return -1, backoff.Permanent(err)
	}
	req.Header.Set(epochHeader, strconv.FormatUint(p.Epoch(), 10))
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return -1, err
	}
	defer drainClose(resp)
	switch {
	case resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK:
		return -1, nil
	case resp.StatusCode == http.StatusRequestedRangeNotSatisfiable:
		var msg offsetMsg
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&msg); derr != nil {
			return -1, derr
		}
		return msg.Offset, nil
	case resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusGone:
		p.fence()
		return -1, backoff.Permanent(ErrFenced)
	default:
		return -1, fmt.Errorf("migrate: snapshot chunk for %s -> %d", job, resp.StatusCode)
	}
}

// Adopt transfers execution of a fully replicated job to the standby —
// the final step of a planned handoff, run after Flush has delivered
// every frame and the current snapshot.
func (p *Primary) Adopt(ctx context.Context, job string) error {
	if !validJobID.MatchString(job) {
		return fmt.Errorf("migrate: bad job id %q", job)
	}
	src := rng.New(p.cfg.JitterSeed ^ 0xada9)
	url := p.cfg.Peer + "/v1/repl/jobs/" + job + "/adopt"
	return backoff.Do(ctx, p.retryPolicy(), src, p.cfg.Sleep, func(ctx context.Context, _ int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
		if err != nil {
			return backoff.Permanent(err)
		}
		req.Header.Set(epochHeader, strconv.FormatUint(p.Epoch(), 10))
		resp, err := p.cfg.Client.Do(req)
		if err != nil {
			return err
		}
		code := resp.StatusCode
		drainClose(resp)
		switch {
		case code == http.StatusOK || code == http.StatusNoContent:
			return nil
		case code == http.StatusConflict || code == http.StatusGone:
			p.fence()
			return backoff.Permanent(ErrFenced)
		default:
			return fmt.Errorf("migrate: adopt %s -> %d", job, code)
		}
	})
}

// drainClose discards the rest of a response body and closes it, so
// the client's connection pool can reuse the socket.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}
