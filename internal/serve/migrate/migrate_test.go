package migrate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve/backoff"
)

// noSleep makes retry backoff instantaneous in tests.
func noSleep(context.Context, time.Duration) error { return nil }

func testPolicy() backoff.Policy {
	return backoff.Policy{Base: time.Millisecond, Cap: 2 * time.Millisecond, Factor: 2, Jitter: 0.5, MaxRetries: 4}
}

func counterValue(reg *obs.Registry, name string) int64 {
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// testSnapshotBytes builds a valid checkpoint file at path and returns
// its encoded bytes.
func testSnapshotBytes(t *testing.T, path string) []byte {
	t.Helper()
	s := &checkpoint.Snapshot{
		Fingerprint: checkpoint.Fingerprint{
			App: "seg", Backend: "rsu", Seed: 7, BurnIn: 2, Iterations: 9,
		},
		Sweep:  4,
		W:      8,
		H:      8,
		M:      3,
		Labels: bytes.Repeat([]byte{0, 1, 2, 1}, 16),
		Chain:  [4]uint64{1, 2, 3, 4},
		Counts: make([]uint32, 8*8*3),
		Energy: []float64{-1, -2, -3},
	}
	if err := checkpoint.Save(path, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestConfigValidate(t *testing.T) {
	base := Config{NodeID: "a", Peer: "http://x"}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Peer: "http://x"}, // no node
		{NodeID: "a"},      // neither role
		{NodeID: "a", Peer: "http://x", Standby: true}, // both roles
		{NodeID: "a", Standby: true, MissLimit: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("case %d: err %v, want ErrInvalidConfig", i, err)
		}
	}
}

func TestLedgerRoundTripAndRegression(t *testing.T) {
	dir := t.TempDir()
	led, err := openLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur := led.Current(); cur.Epoch != 0 {
		t.Fatalf("fresh ledger epoch %d, want 0", cur.Epoch)
	}
	if err := led.Commit(leaseRecord{Epoch: 3, Node: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := led.Commit(leaseRecord{Epoch: 2, Node: "b"}); err == nil {
		t.Fatal("epoch regression committed")
	}
	reopened, err := openLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur := reopened.Current(); cur.Epoch != 3 || cur.Node != "a" {
		t.Fatalf("reopened ledger %+v, want {3 a}", cur)
	}
}

// testStandby builds a standby with a controllable clock and in-memory
// frame hooks.
type frameStore struct {
	mu       sync.Mutex
	records  map[string][]byte
	statuses map[string][]byte
}

func newStandbyFixture(t *testing.T, dir string) (*Standby, *frameStore, *obs.Registry, func(time.Time)) {
	t.Helper()
	fs := &frameStore{records: map[string][]byte{}, statuses: map[string][]byte{}}
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	setNow := func(v time.Time) {
		mu.Lock()
		now = v
		mu.Unlock()
	}
	reg := obs.New()
	sb, err := NewStandby(dir, Config{
		NodeID:         "b",
		Standby:        true,
		LeaseTTL:       300 * time.Millisecond,
		HeartbeatEvery: 100 * time.Millisecond,
		MissLimit:      3,
		Now:            clock,
		Sleep:          noSleep,
	}, reg, Hooks{
		WriteRecord: func(id string, data []byte) error {
			fs.mu.Lock()
			defer fs.mu.Unlock()
			fs.records[id] = data
			return nil
		},
		WriteStatus: func(id string, data []byte) error {
			fs.mu.Lock()
			defer fs.mu.Unlock()
			fs.statuses[id] = data
			return nil
		},
		SnapshotPath: func(id string) string { return filepath.Join(dir, id+".ckpt") },
	})
	if err != nil {
		t.Fatal(err)
	}
	return sb, fs, reg, setNow
}

func doReq(t *testing.T, h http.Handler, method, path string, epoch uint64, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if epoch > 0 {
		req.Header.Set(epochHeader, strconv.FormatUint(epoch, 10))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestLeaseFencingAfterTakeover walks the whole fencing story: a
// primary leases and replicates, the failure detector seizes
// ownership, and from then on the resurrected primary cannot commit a
// single byte — across standby restarts too.
func TestLeaseFencingAfterTakeover(t *testing.T) {
	dir := t.TempDir()
	sb, fs, reg, setNow := newStandbyFixture(t, dir)
	var takeoverEpoch uint64
	sb.hooks.Takeover = func(e uint64) { takeoverEpoch = e }
	h := sb.Handler()

	// Grant epoch 1 to primary "a".
	w := doReq(t, h, http.MethodPost, "/v1/repl/lease", 0, []byte(`{"node":"a","epoch":1}`))
	if w.Code != http.StatusOK {
		t.Fatalf("lease: %d %s", w.Code, w.Body)
	}
	// A frame at the granted epoch lands.
	w = doReq(t, h, http.MethodPut, "/v1/repl/jobs/j1/record", 1, []byte(`{"id":"j1"}`))
	if w.Code != http.StatusNoContent {
		t.Fatalf("frame: %d %s", w.Code, w.Body)
	}
	if fs.records["j1"] == nil {
		t.Fatal("frame hook not invoked")
	}
	// A stale-epoch lease proposal is refused with the current epoch.
	w = doReq(t, h, http.MethodPost, "/v1/repl/lease", 0, []byte(`{"node":"a","epoch":1}`))
	if w.Code != http.StatusConflict {
		t.Fatalf("stale lease: %d, want 409", w.Code)
	}

	// Starve the detector: MissLimit beat-free periods.
	base := time.Unix(2000, 0)
	for i := 0; i < 3; i++ {
		setNow(base.Add(time.Duration(i) * time.Second))
		fired := sb.checkLiveness(base.Add(time.Duration(i) * time.Second))
		if fired != (i == 2) {
			t.Fatalf("tick %d: takeover fired=%v", i, fired)
		}
	}
	if takeoverEpoch != 2 {
		t.Fatalf("takeover epoch %d, want 2", takeoverEpoch)
	}
	if counterValue(reg, "serve.migrate.takeovers") != 1 {
		t.Fatal("takeover counter not incremented")
	}

	// The resurrected primary is fenced on every path.
	fencedBefore := counterValue(reg, "serve.migrate.fenced_frames")
	w = doReq(t, h, http.MethodPut, "/v1/repl/jobs/j1/status", 1, []byte(`{"state":"running"}`))
	if w.Code != http.StatusConflict {
		t.Fatalf("stale frame after takeover: %d, want 409", w.Code)
	}
	if fs.statuses["j1"] != nil {
		t.Fatal("stale frame reached the hook after takeover")
	}
	if counterValue(reg, "serve.migrate.fenced_frames") <= fencedBefore {
		t.Fatal("fenced-frame counter not incremented")
	}
	w = doReq(t, h, http.MethodPost, "/v1/repl/heartbeat", 1, nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("heartbeat after takeover: %d, want 409", w.Code)
	}
	// Even a fresh, higher lease proposal: ownership is gone for good.
	w = doReq(t, h, http.MethodPost, "/v1/repl/lease", 0, []byte(`{"node":"a","epoch":99}`))
	if w.Code != http.StatusGone {
		t.Fatalf("lease after takeover: %d, want 410", w.Code)
	}

	// Fencing survives a standby restart: the ledger names this node.
	sb2, _, _, _ := newStandbyFixture(t, dir)
	if !sb2.TookOver() {
		t.Fatal("restarted standby forgot its takeover")
	}
}

func TestAdmitRequiresGrantedLease(t *testing.T) {
	dir := t.TempDir()
	sb, _, _, _ := newStandbyFixture(t, dir)
	h := sb.Handler()
	// No lease granted yet: every frame is refused.
	w := doReq(t, h, http.MethodPut, "/v1/repl/jobs/j1/record", 1, []byte(`{}`))
	if w.Code != http.StatusConflict {
		t.Fatalf("frame without lease: %d, want 409", w.Code)
	}
	// Bad job IDs never reach the hooks.
	w = doReq(t, h, http.MethodPut, "/v1/repl/jobs/..%2Fetc/record", 1, []byte(`{}`))
	if w.Code == http.StatusNoContent {
		t.Fatal("traversal job id accepted")
	}
}

// TestSnapshotResumeAfterFailure streams a snapshot through a flaky
// standby: one chunk send dies mid-transfer, and the retry resumes
// from the offset the standby reports instead of starting over.
func TestSnapshotResumeAfterFailure(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sb, _, sreg, _ := newStandbyFixture(t, dirB)
	if err := sb.led.Commit(leaseRecord{Epoch: 1, Node: "a"}); err != nil {
		t.Fatal(err)
	}

	var chunkPuts, failures int
	var mu sync.Mutex
	inner := sb.Handler()
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && r.URL.Query().Get("gen") != "" {
			mu.Lock()
			chunkPuts++
			n := chunkPuts
			mu.Unlock()
			if n == 2 {
				mu.Lock()
				failures++
				mu.Unlock()
				w.WriteHeader(http.StatusBadGateway)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	snapPath := filepath.Join(dirA, "j1.ckpt")
	want := testSnapshotBytes(t, snapPath)

	preg := obs.New()
	p, err := NewPrimary(dirA, Config{
		NodeID:     "a",
		Peer:       srv.URL,
		ChunkBytes: 64, // force many chunks so the failure lands mid-stream
		Retry:      testPolicy(),
		Sleep:      noSleep,
	}, preg, func(string) string { return snapPath }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.epoch = 1
	p.leased = true
	p.mu.Unlock()

	src := rng.New(1)
	if err := p.sendSnapshot(context.Background(), src, "j1"); err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("flaky middleware fired %d times, want 1", failures)
	}
	got, err := os.ReadFile(sb.hooks.SnapshotPath("j1"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("installed snapshot differs from the source")
	}
	if counterValue(sreg, "serve.repl.snapshots_installed") != 1 {
		t.Fatal("snapshot install counter != 1")
	}
	if counterValue(preg, "serve.repl.snapshot_resumes") < 1 {
		t.Fatal("transfer did not resume from an offset")
	}
	// Re-sending the same generation is a no-op (offset probe reports
	// complete).
	before := counterValue(preg, "serve.repl.bytes")
	if err := p.sendSnapshot(context.Background(), src, "j1"); err != nil {
		t.Fatal(err)
	}
	if counterValue(preg, "serve.repl.bytes") != before {
		t.Fatal("complete snapshot was re-sent")
	}
}

// TestPrimaryLeaseLifecycleAndFencing runs the real Primary.Run loop
// against a standby: the lease is acquired (activating the node), the
// failure detector later seizes ownership, and the primary observes
// the refusal and fences itself.
func TestPrimaryLeaseLifecycleAndFencing(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sb, fs, _, _ := newStandbyFixture(t, dirB)
	srv := httptest.NewServer(sb.Handler())
	defer srv.Close()

	leased := make(chan uint64, 1)
	fenced := make(chan struct{})
	preg := obs.New()
	p, err := NewPrimary(dirA, Config{
		NodeID:         "a",
		Peer:           srv.URL,
		LeaseTTL:       60 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
		Retry:          testPolicy(),
	}, preg, func(string) string { return filepath.Join(dirA, "none.ckpt") },
		func(e uint64) { leased <- e }, func() { close(fenced) })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- p.Run(ctx) }()

	select {
	case e := <-leased:
		if e != 1 {
			t.Fatalf("leased epoch %d, want 1", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lease never granted")
	}

	// Frames flow while leased.
	p.Record("j1", []byte(`{"id":"j1"}`))
	if err := p.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	gotRec := fs.records["j1"] != nil
	fs.mu.Unlock()
	if !gotRec {
		t.Fatal("record frame not delivered")
	}

	// The standby seizes ownership; the next heartbeat fences the
	// primary. A live heartbeat can reset the miss counter between
	// detector ticks, so keep ticking until the takeover fires.
	far := time.Unix(9000, 0)
	deadline := time.Now().Add(5 * time.Second)
	for !sb.TookOver() {
		if time.Now().After(deadline) {
			t.Fatal("standby did not take over")
		}
		sb.checkLiveness(far)
	}
	select {
	case <-fenced:
	case <-time.After(5 * time.Second):
		t.Fatal("primary never fenced")
	}
	if !p.Fenced() {
		t.Fatal("Fenced() false after fence callback")
	}
	// Enqueues after fencing are dropped, and Flush reports the fence.
	p.Status("j1", []byte(`{}`))
	if err := p.Flush(context.Background()); !errors.Is(err, ErrFenced) {
		t.Fatalf("Flush after fence: %v, want ErrFenced", err)
	}
	select {
	case err := <-runDone:
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("Run returned %v, want ErrFenced", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit after fencing")
	}
}

// TestSnapshotChunkValidation rejects assemblies that decode but do
// not match the generation the sender named, and assemblies that do
// not decode at all.
func TestSnapshotChunkValidation(t *testing.T) {
	dirB := t.TempDir()
	sb, _, sreg, _ := newStandbyFixture(t, dirB)
	if err := sb.led.Commit(leaseRecord{Epoch: 1, Node: "a"}); err != nil {
		t.Fatal(err)
	}
	h := sb.Handler()

	// Garbage assembly: decode fails, 422, nothing installed.
	w := doReq(t, h, http.MethodPut, "/v1/repl/jobs/j9/snapshot?gen=00000000deadbeef&offset=0&final=1", 1, []byte("not a checkpoint"))
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage final chunk: %d, want 422", w.Code)
	}
	if counterValue(sreg, "serve.repl.snapshot_rejects") != 1 {
		t.Fatal("reject counter != 1")
	}
	if _, err := os.Stat(sb.hooks.SnapshotPath("j9")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rejected snapshot was installed")
	}

	// Valid checkpoint bytes sent under the wrong generation name: 422.
	data := testSnapshotBytes(t, filepath.Join(t.TempDir(), "x.ckpt"))
	w = doReq(t, h, http.MethodPut, "/v1/repl/jobs/j9/snapshot?gen=1111111111111111&offset=0&final=1", 1, data)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("mismatched gen: %d, want 422", w.Code)
	}

	// Non-zero offset for an unknown generation: 416 with resume hint 0.
	w = doReq(t, h, http.MethodPut, "/v1/repl/jobs/j9/snapshot?gen=2222222222222222&offset=64&final=0", 1, data[:16])
	if w.Code != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("bad offset: %d, want 416", w.Code)
	}
	var msg offsetMsg
	if err := json.Unmarshal(w.Body.Bytes(), &msg); err != nil || msg.Offset != 0 {
		t.Fatalf("resume hint %+v (err %v), want offset 0", msg, err)
	}
}
