package migrate

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// Hooks is the standby's interface to its serving layer. migrate hands
// over raw journal bytes and snapshot files; the server decides how
// they become runnable jobs. All hooks may be called concurrently.
type Hooks struct {
	// WriteRecord / WriteStatus / WriteLabels durably install one
	// replicated journal frame.
	WriteRecord func(id string, data []byte) error
	WriteStatus func(id string, data []byte) error
	WriteLabels func(id string, data []byte) error
	// SnapshotPath names the local chain-snapshot file for a job.
	SnapshotPath func(id string) string
	// Adopt enqueues a job handed off by a live primary (planned
	// migration): the job's journal frames and snapshot are already
	// installed when Adopt runs.
	Adopt func(id string) error
	// Takeover fires once when the failure detector promotes this node:
	// the serving layer recovers every replicated job and starts
	// running. epoch is the new, seized lease epoch.
	Takeover func(epoch uint64)
}

// maxFrameBytes bounds one journal frame (records and statuses are
// small JSON; labels are PGMs ≤ ~1 MiB at the spec size cap).
const maxFrameBytes = 8 << 20

// maxPartialBytes bounds one in-assembly snapshot.
const maxPartialBytes = 64 << 20

// validJobID gates path elements received over the wire against
// traversal; job IDs are "<tenant>-<seq>" and tenant names are already
// this alphabet.
var validJobID = regexp.MustCompile(`^[a-zA-Z0-9_-]{1,128}$`)

// partialSnap is one snapshot mid-assembly: the generation being
// transferred and the contiguous prefix received so far.
type partialSnap struct {
	gen string
	buf []byte
}

// Standby is the replication receiver and failover target. Mount
// Handler under the node's HTTP server and drive the failure detector
// with Run.
type Standby struct {
	cfg   Config
	reg   *obs.Registry
	led   *ledger
	hooks Hooks

	mu       sync.Mutex
	tookOver bool
	lastBeat time.Time
	misses   int
	partials map[string]*partialSnap
}

// NewStandby opens the node's lease ledger under stateDir and returns
// the receiver. If a previous incarnation of this node had already
// taken over (it is the ledger's owner), the standby comes up fenced-
// closed: it refuses every lease and frame, so a primary resurrected
// after a standby restart still cannot commit state.
func NewStandby(stateDir string, cfg Config, reg *obs.Registry, hooks Hooks) (*Standby, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.New()
	}
	led, err := openLedger(stateDir)
	if err != nil {
		return nil, err
	}
	s := &Standby{cfg: cfg, reg: reg, led: led, hooks: hooks, partials: map[string]*partialSnap{}}
	if rec := led.Current(); rec.Epoch > 0 && rec.Node == cfg.NodeID {
		s.tookOver = true
	}
	s.lastBeat = cfg.Now()
	return s, nil
}

// TookOver reports whether this node has seized ownership.
func (s *Standby) TookOver() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tookOver
}

// Run drives the failure detector until ctx dies: every heartbeat
// period with no sign of life from the leased primary counts one miss,
// and MissLimit consecutive misses trigger the takeover. Run returns
// nil when ctx ends (takeover itself does not stop the detector — the
// loop keeps ticking as a no-op so fencing stays armed).
func (s *Standby) Run(ctx context.Context) error {
	t := time.NewTicker(s.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			s.checkLiveness(s.cfg.Now())
		}
	}
}

// checkLiveness is one failure-detector evaluation at time now,
// returning whether it fired the takeover. Split out from Run so tests
// drive the detector with a synthetic clock.
func (s *Standby) checkLiveness(now time.Time) bool {
	s.mu.Lock()
	cur := s.led.Current()
	// Nothing to detect: never leased, leased to ourselves, or already
	// taken over.
	if s.tookOver || cur.Epoch == 0 || cur.Node == s.cfg.NodeID {
		s.mu.Unlock()
		return false
	}
	if now.Sub(s.lastBeat) < s.cfg.HeartbeatEvery {
		s.misses = 0
		s.mu.Unlock()
		return false
	}
	s.misses++
	obs.Add(s.reg, "serve.migrate.heartbeat_misses", 1)
	if s.misses < s.cfg.MissLimit {
		s.mu.Unlock()
		return false
	}
	epoch := cur.Epoch + 1
	if err := s.led.Commit(leaseRecord{Epoch: epoch, Node: s.cfg.NodeID}); err != nil {
		// Cannot fence durably — do not take over on a best-effort
		// epoch; retry next tick.
		obs.Add(s.reg, "serve.migrate.ledger_errors", 1)
		s.mu.Unlock()
		return false
	}
	s.tookOver = true
	s.mu.Unlock()
	obs.Add(s.reg, "serve.migrate.takeovers", 1)
	if s.hooks.Takeover != nil {
		s.hooks.Takeover(epoch)
	}
	return true
}

// Handler returns the replication API:
//
//	POST   /v1/repl/lease                       acquire/renew ownership
//	POST   /v1/repl/heartbeat                   liveness
//	PUT    /v1/repl/jobs/{id}/record            journal record frame
//	PUT    /v1/repl/jobs/{id}/status            journal status frame
//	PUT    /v1/repl/jobs/{id}/labels            terminal labels frame
//	GET    /v1/repl/jobs/{id}/snapshot/offset   resume-offset probe
//	PUT    /v1/repl/jobs/{id}/snapshot          snapshot chunk
//	POST   /v1/repl/jobs/{id}/adopt             planned-handoff adoption
func (s *Standby) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/repl/lease", s.handleLease)
	mux.HandleFunc("POST /v1/repl/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("PUT /v1/repl/jobs/{id}/record", s.frameHandler(func(h Hooks) func(string, []byte) error { return h.WriteRecord }))
	mux.HandleFunc("PUT /v1/repl/jobs/{id}/status", s.frameHandler(func(h Hooks) func(string, []byte) error { return h.WriteStatus }))
	mux.HandleFunc("PUT /v1/repl/jobs/{id}/labels", s.frameHandler(func(h Hooks) func(string, []byte) error { return h.WriteLabels }))
	mux.HandleFunc("GET /v1/repl/jobs/{id}/snapshot/offset", s.handleOffset)
	mux.HandleFunc("PUT /v1/repl/jobs/{id}/snapshot", s.handleSnapshotChunk)
	mux.HandleFunc("POST /v1/repl/jobs/{id}/adopt", s.handleAdopt)
	return mux
}

func replJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// admit enforces the fencing check every frame must pass: the sender's
// epoch must equal the current granted lease, and ownership must not
// have been seized. Returns the rejection code (409) with ok=false on
// a stale frame.
func (s *Standby) admit(r *http.Request) bool {
	epoch, err := strconv.ParseUint(r.Header.Get(epochHeader), 10, 64)
	s.mu.Lock()
	cur := s.led.Current()
	ok := err == nil && !s.tookOver && cur.Epoch > 0 && cur.Node != s.cfg.NodeID && epoch == cur.Epoch
	if ok {
		// A frame is as good a sign of life as a heartbeat.
		s.lastBeat = s.cfg.Now()
		s.misses = 0
	}
	s.mu.Unlock()
	if !ok {
		obs.Add(s.reg, "serve.migrate.fenced_frames", 1)
	}
	return ok
}

func jobIDOf(r *http.Request) (string, bool) {
	id := r.PathValue("id")
	return id, validJobID.MatchString(id)
}

// handleLease grants ownership epochs. Refusals carry the current
// epoch (409: propose higher) or are final (410: this standby has
// taken over; the old primary must fence itself).
func (s *Standby) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil || req.Node == "" {
		replJSON(w, http.StatusBadRequest, map[string]string{"error": "bad lease request"})
		return
	}
	s.mu.Lock()
	cur := s.led.Current()
	if s.tookOver {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.migrate.lease_refusals", 1)
		replJSON(w, http.StatusGone, leaseMsg{Node: s.cfg.NodeID, Epoch: cur.Epoch})
		return
	}
	if req.Epoch <= cur.Epoch {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.migrate.lease_refusals", 1)
		replJSON(w, http.StatusConflict, leaseMsg{Node: cur.Node, Epoch: cur.Epoch})
		return
	}
	if err := s.led.Commit(leaseRecord{Epoch: req.Epoch, Node: req.Node}); err != nil {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.migrate.ledger_errors", 1)
		replJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.lastBeat = s.cfg.Now()
	s.misses = 0
	s.mu.Unlock()
	obs.Add(s.reg, "serve.migrate.lease_grants", 1)
	replJSON(w, http.StatusOK, leaseMsg{Node: req.Node, Epoch: req.Epoch})
}

func (s *Standby) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.admit(r) {
		replJSON(w, http.StatusConflict, map[string]string{"error": ErrFenced.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// frameHandler builds the PUT handler for one journal-frame kind.
func (s *Standby) frameHandler(pick func(Hooks) func(string, []byte) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobIDOf(r)
		if !ok {
			replJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id"})
			return
		}
		if !s.admit(r) {
			replJSON(w, http.StatusConflict, map[string]string{"error": ErrFenced.Error()})
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFrameBytes))
		if err != nil {
			replJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		write := pick(s.hooks)
		if write == nil {
			replJSON(w, http.StatusNotImplemented, map[string]string{"error": "frame hook not wired"})
			return
		}
		if err := write(id, data); err != nil {
			replJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		obs.Add(s.reg, "serve.repl.recv_frames", 1)
		obs.Add(s.reg, "serve.repl.recv_bytes", int64(len(data)))
		w.WriteHeader(http.StatusNoContent)
	}
}

// handleOffset reports how much of generation ?gen= this standby
// already holds for the job — the partial in assembly, the installed
// snapshot (complete), or nothing.
func (s *Standby) handleOffset(w http.ResponseWriter, r *http.Request) {
	id, ok := jobIDOf(r)
	if !ok {
		replJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id"})
		return
	}
	if !s.admit(r) {
		replJSON(w, http.StatusConflict, map[string]string{"error": ErrFenced.Error()})
		return
	}
	gen := r.URL.Query().Get("gen")
	s.mu.Lock()
	if pt := s.partials[id]; pt != nil && pt.gen == gen {
		off := int64(len(pt.buf))
		s.mu.Unlock()
		replJSON(w, http.StatusOK, offsetMsg{Offset: off})
		return
	}
	s.mu.Unlock()
	if sr, err := checkpoint.OpenStream(s.hooks.SnapshotPath(id)); err == nil {
		installed := fmt.Sprintf("%016x", sr.CRC())
		size := sr.Size()
		sr.Close()
		if installed == gen {
			replJSON(w, http.StatusOK, offsetMsg{Offset: size, Complete: true})
			return
		}
	}
	replJSON(w, http.StatusOK, offsetMsg{})
}

// handleSnapshotChunk appends one chunk (?gen=&offset=&final=) to the
// job's in-assembly snapshot. An offset that does not continue the
// held prefix is answered with 416 plus the offset the sender should
// resume from. The final chunk triggers full decode validation before
// the snapshot is atomically installed — a standby can hold a partial,
// but never adopt one.
func (s *Standby) handleSnapshotChunk(w http.ResponseWriter, r *http.Request) {
	id, ok := jobIDOf(r)
	if !ok {
		replJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id"})
		return
	}
	if !s.admit(r) {
		replJSON(w, http.StatusConflict, map[string]string{"error": ErrFenced.Error()})
		return
	}
	q := r.URL.Query()
	gen := q.Get("gen")
	offset, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil || gen == "" {
		replJSON(w, http.StatusBadRequest, map[string]string{"error": "bad gen/offset"})
		return
	}
	final := q.Get("final") == "1"
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFrameBytes))
	if err != nil {
		replJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}

	s.mu.Lock()
	pt := s.partials[id]
	if pt == nil || pt.gen != gen {
		if offset != 0 {
			s.mu.Unlock()
			replJSON(w, http.StatusRequestedRangeNotSatisfiable, offsetMsg{})
			return
		}
		pt = &partialSnap{gen: gen}
		s.partials[id] = pt
	}
	if offset != int64(len(pt.buf)) {
		off := int64(len(pt.buf))
		s.mu.Unlock()
		replJSON(w, http.StatusRequestedRangeNotSatisfiable, offsetMsg{Offset: off})
		return
	}
	if len(pt.buf)+len(data) > maxPartialBytes {
		delete(s.partials, id)
		s.mu.Unlock()
		replJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "snapshot exceeds partial budget"})
		return
	}
	pt.buf = append(pt.buf, data...)
	if !final {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.repl.recv_bytes", int64(len(data)))
		w.WriteHeader(http.StatusNoContent)
		return
	}
	assembled := pt.buf
	delete(s.partials, id)
	s.mu.Unlock()

	// Validate the assembled bytes end to end: the envelope CRC must
	// check out AND the trailer must be the generation the sender named
	// (the stream reader on the other side pinned it when it opened the
	// file, so a mismatch means the transfer interleaved two files).
	if _, err := checkpoint.Decode(assembled); err != nil {
		obs.Add(s.reg, "serve.repl.snapshot_rejects", 1)
		replJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	if got := assembledGen(assembled); got != gen {
		obs.Add(s.reg, "serve.repl.snapshot_rejects", 1)
		replJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": "generation mismatch after assembly"})
		return
	}
	if err := atomicWrite(s.hooks.SnapshotPath(id), assembled); err != nil {
		replJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	obs.Add(s.reg, "serve.repl.recv_bytes", int64(len(data)))
	obs.Add(s.reg, "serve.repl.snapshots_installed", 1)
	w.WriteHeader(http.StatusNoContent)
}

// assembledGen extracts the CRC-64 trailer (the generation ID) from a
// fully assembled snapshot encoding.
func assembledGen(data []byte) string {
	if len(data) < 8 {
		return ""
	}
	return hex.EncodeToString(reverse8(data[len(data)-8:]))
}

// reverse8 renders the little-endian trailer in the big-endian hex the
// wire protocol uses (%016x of the uint64).
func reverse8(b []byte) []byte {
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = b[7-i]
	}
	return out
}

// handleAdopt completes a planned handoff: the primary has flushed the
// job's frames and snapshot and now transfers execution.
func (s *Standby) handleAdopt(w http.ResponseWriter, r *http.Request) {
	id, ok := jobIDOf(r)
	if !ok {
		replJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id"})
		return
	}
	if !s.admit(r) {
		replJSON(w, http.StatusConflict, map[string]string{"error": ErrFenced.Error()})
		return
	}
	if s.hooks.Adopt == nil {
		replJSON(w, http.StatusNotImplemented, map[string]string{"error": "adopt hook not wired"})
		return
	}
	if err := s.hooks.Adopt(id); err != nil {
		replJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	obs.Add(s.reg, "serve.migrate.jobs_adopted", 1)
	replJSON(w, http.StatusOK, map[string]string{"id": id, "state": "adopted"})
}
