// Package backoff is the serving layer's retry policy: exponential
// delays with multiplicative growth, a hard cap, and downward jitter
// drawn from an injected deterministic source.
//
// Two properties matter more than the arithmetic:
//
//   - Determinism boundaries. Jitter comes from a *rng.Source the caller
//     owns, never from the solver's chain streams, so retrying a job can
//     never perturb the labels it samples (the serving determinism test
//     in internal/serve pins this). Sleeping goes through an injectable
//     SleepFunc, so tests drive the policy with a fake clock.
//   - Error classification. Permanent errors — configuration rejections,
//     checkpoint fingerprint mismatches, anything retrying cannot fix —
//     are never retried: Do stops on the first error that matches a
//     Policy.Permanent sentinel (via errors.Is) or carries the
//     Permanent() marker.
package backoff

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/rng"
)

// ErrInvalidPolicy is wrapped by every policy-validation error.
var ErrInvalidPolicy = errors.New("backoff: invalid policy")

// Policy shapes the retry schedule. The delay before retry n (0-based)
// is min(Cap, Base·Factorⁿ), minus up to a Jitter fraction drawn
// uniformly, so every delay lies in [(1−Jitter)·dₙ, dₙ] and never
// exceeds Cap.
type Policy struct {
	// Base is the unjittered delay before the first retry. Required
	// positive when MaxRetries > 0.
	Base time.Duration
	// Cap bounds every delay from above (0: uncapped).
	Cap time.Duration
	// Factor is the per-retry growth multiplier (0: default 2; must
	// otherwise be >= 1).
	Factor float64
	// Jitter is the fraction of each delay randomized downward, in
	// [0, 1]. 0 disables jitter.
	Jitter float64
	// MaxRetries bounds retries after the initial attempt (0: the
	// first failure is final).
	MaxRetries int
	// Permanent lists error classes that must never be retried:
	// Do stops as soon as the attempt error errors.Is one of them.
	Permanent []error
}

// Validate checks the policy, wrapping ErrInvalidPolicy.
func (p Policy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("%w: MaxRetries %d < 0", ErrInvalidPolicy, p.MaxRetries)
	}
	if p.Base < 0 {
		return fmt.Errorf("%w: Base %v < 0", ErrInvalidPolicy, p.Base)
	}
	if p.MaxRetries > 0 && p.Base == 0 {
		return fmt.Errorf("%w: MaxRetries %d needs a positive Base", ErrInvalidPolicy, p.MaxRetries)
	}
	if p.Cap < 0 {
		return fmt.Errorf("%w: Cap %v < 0", ErrInvalidPolicy, p.Cap)
	}
	if p.Cap > 0 && p.Cap < p.Base {
		return fmt.Errorf("%w: Cap %v < Base %v", ErrInvalidPolicy, p.Cap, p.Base)
	}
	if p.Factor != 0 && p.Factor < 1 {
		return fmt.Errorf("%w: Factor %g < 1 (delays must not shrink)", ErrInvalidPolicy, p.Factor)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("%w: Jitter %g outside [0,1]", ErrInvalidPolicy, p.Jitter)
	}
	return nil
}

// Delay returns the jittered delay before retry n (0-based). The draw
// consumes exactly one src.Float64 when jitter is enabled, so a given
// (policy, src state) pair always yields the same schedule. A nil src
// disables jitter regardless of the policy.
func (p Policy) Delay(n int, src *rng.Source) time.Duration {
	factor := p.Factor
	if factor == 0 {
		factor = 2
	}
	d := float64(p.Base)
	ceil := float64(p.Cap)
	for i := 0; i < n; i++ {
		d *= factor
		if p.Cap > 0 && d >= ceil {
			d = ceil
			break
		}
	}
	if p.Cap > 0 && d > ceil {
		d = ceil
	}
	if p.Jitter > 0 && src != nil {
		d -= src.Float64() * p.Jitter * d
	}
	return time.Duration(d)
}

// PermanentError marks an error that must never be retried. Callers
// usually wrap with Permanent; Do unwraps transparently, so errors.Is
// and errors.As see through the marker.
type PermanentError struct{ Err error }

// Error implements error.
func (e *PermanentError) Error() string { return e.Err.Error() }

// Unwrap exposes the marked error to errors.Is/As.
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent marks err as non-retryable. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// IsPermanent reports whether err is marked Permanent or matches one of
// the policy's permanent sentinels.
func (p Policy) IsPermanent(err error) bool {
	var pe *PermanentError
	if errors.As(err, &pe) {
		return true
	}
	for _, sentinel := range p.Permanent {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// SleepFunc waits for d or until ctx is done, returning ctx.Err() when
// the wait was cut short. Tests inject fakes that record d and return
// immediately.
type SleepFunc func(ctx context.Context, d time.Duration) error

// SleepTimer is the production SleepFunc, backed by a real timer.
func SleepTimer(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op, retrying per the policy until it succeeds, fails
// permanently, exhausts MaxRetries, or ctx is canceled during a backoff
// wait. op receives the 0-based attempt number. The returned error is
// the last attempt's error (nil on success); callers that need to
// distinguish a canceled wait inspect ctx.Err() themselves. A nil sleep
// uses SleepTimer.
func Do(ctx context.Context, p Policy, src *rng.Source, sleep SleepFunc, op func(ctx context.Context, attempt int) error) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if sleep == nil {
		sleep = SleepTimer
	}
	for attempt := 0; ; attempt++ {
		err := op(ctx, attempt)
		if err == nil {
			return nil
		}
		if p.IsPermanent(err) || attempt >= p.MaxRetries {
			return err
		}
		if serr := sleep(ctx, p.Delay(attempt, src)); serr != nil {
			// Canceled mid-backoff: surface the attempt's error; the
			// caller sees the cancellation on its own ctx.
			return err
		}
	}
}
