package backoff

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/rng"
)

// fakeSleep records every requested delay and returns immediately —
// the fake clock driving Do in these tests.
type fakeSleep struct {
	delays []time.Duration
	err    error
}

func (f *fakeSleep) sleep(_ context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	return f.err
}

func TestValidate(t *testing.T) {
	bad := []Policy{
		{MaxRetries: -1},
		{Base: -time.Second},
		{MaxRetries: 1}, // retries need a Base
		{Base: time.Second, Cap: -1, MaxRetries: 0}, // negative cap
		{Base: time.Second, Cap: time.Millisecond},  // cap < base
		{Base: time.Second, Factor: 0.5},            // shrinking delays
		{Base: time.Second, Jitter: -0.1},           //
		{Base: time.Second, Jitter: 1.5},            //
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrInvalidPolicy) {
			t.Errorf("bad[%d] %+v: err %v, want ErrInvalidPolicy", i, p, err)
		}
	}
	good := []Policy{
		{},
		{Base: time.Second, MaxRetries: 5, Cap: time.Minute, Factor: 2, Jitter: 0.5},
		{Base: time.Millisecond, Jitter: 1},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good[%d] %+v: %v", i, p, err)
		}
	}
}

func TestDelayExactWithoutJitter(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Factor: 2, MaxRetries: 10}
	want := []time.Duration{
		100 * time.Millisecond, // n=0
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second, // stays capped
	}
	for n, w := range want {
		if got := p.Delay(n, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestDelayJitterBoundsAndCap(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5, MaxRetries: 20}
	src := rng.New(42)
	for n := 0; n < 20; n++ {
		got := p.Delay(n, src)
		unjittered := p.Delay(n, nil)
		lo := time.Duration(float64(unjittered) * (1 - p.Jitter))
		if got < lo || got > unjittered {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", n, got, lo, unjittered)
		}
		if got > p.Cap {
			t.Errorf("Delay(%d) = %v exceeds Cap %v", n, got, p.Cap)
		}
	}
}

func TestDelayDeterministicSchedule(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Jitter: 1, MaxRetries: 8}
	a, b := rng.New(7), rng.New(7)
	for n := 0; n < 8; n++ {
		if da, db := p.Delay(n, a), p.Delay(n, b); da != db {
			t.Fatalf("Delay(%d): %v vs %v from identical sources", n, da, db)
		}
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Jitter: 0.5, MaxRetries: 5}
	fs := &fakeSleep{}
	var attempts []int
	err := Do(context.Background(), p, rng.New(3), fs.sleep, func(_ context.Context, attempt int) error {
		attempts = append(attempts, attempt)
		if attempt < 2 {
			return fmt.Errorf("transient %d", attempt)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(attempts) != 3 {
		t.Fatalf("attempts %v, want [0 1 2]", attempts)
	}
	// The sleeps must match the policy schedule drawn from an identical
	// jitter source.
	ref := rng.New(3)
	for n, got := range fs.delays {
		if want := p.Delay(n, ref); got != want {
			t.Errorf("sleep[%d] = %v, want %v", n, got, want)
		}
	}
	if len(fs.delays) != 2 {
		t.Errorf("slept %d times, want 2", len(fs.delays))
	}
}

func TestDoExhaustsRetries(t *testing.T) {
	p := Policy{Base: time.Millisecond, MaxRetries: 3}
	fs := &fakeSleep{}
	calls := 0
	wantErr := errors.New("still broken")
	err := Do(context.Background(), p, nil, fs.sleep, func(_ context.Context, _ int) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Do: %v, want last attempt error", err)
	}
	if calls != 4 {
		t.Errorf("op ran %d times, want MaxRetries+1 = 4", calls)
	}
}

// TestDoPermanentSentinelsNeverRetry pins the serving contract: the
// error classes that retrying cannot fix — invalid configurations and
// checkpoint fingerprint mismatches — stop Do on the first attempt.
func TestDoPermanentSentinelsNeverRetry(t *testing.T) {
	p := Policy{
		Base: time.Millisecond, MaxRetries: 5,
		Permanent: []error{core.ErrInvalidConfig, checkpoint.ErrMismatch, checkpoint.ErrVersion},
	}
	for _, base := range []error{core.ErrInvalidConfig, checkpoint.ErrMismatch, checkpoint.ErrVersion} {
		wrapped := fmt.Errorf("attempt failed: %w", base)
		fs := &fakeSleep{}
		calls := 0
		err := Do(context.Background(), p, nil, fs.sleep, func(_ context.Context, _ int) error {
			calls++
			return wrapped
		})
		if !errors.Is(err, base) {
			t.Errorf("%v: Do returned %v", base, err)
		}
		if calls != 1 {
			t.Errorf("%v: op ran %d times, want 1 (permanent)", base, calls)
		}
		if len(fs.delays) != 0 {
			t.Errorf("%v: slept %d times for a permanent error", base, len(fs.delays))
		}
	}
}

func TestDoPermanentMarker(t *testing.T) {
	p := Policy{Base: time.Millisecond, MaxRetries: 5}
	inner := errors.New("broken precondition")
	calls := 0
	err := Do(context.Background(), p, nil, (&fakeSleep{}).sleep, func(_ context.Context, _ int) error {
		calls++
		return Permanent(fmt.Errorf("wrap: %w", inner))
	})
	if calls != 1 {
		t.Errorf("op ran %d times, want 1", calls)
	}
	// The marker must be transparent to errors.Is.
	if !errors.Is(err, inner) {
		t.Errorf("errors.Is fails through PermanentError: %v", err)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestDoCanceledSleepSurfacesAttemptError(t *testing.T) {
	p := Policy{Base: time.Millisecond, MaxRetries: 5}
	attemptErr := errors.New("transient")
	fs := &fakeSleep{err: context.Canceled}
	calls := 0
	err := Do(context.Background(), p, nil, fs.sleep, func(_ context.Context, _ int) error {
		calls++
		return attemptErr
	})
	if !errors.Is(err, attemptErr) {
		t.Fatalf("Do: %v, want the attempt error", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times after canceled sleep, want 1", calls)
	}
}

func TestDoInvalidPolicy(t *testing.T) {
	err := Do(context.Background(), Policy{MaxRetries: -1}, nil, nil, func(_ context.Context, _ int) error {
		t.Fatal("op must not run under an invalid policy")
		return nil
	})
	if !errors.Is(err, ErrInvalidPolicy) {
		t.Fatalf("Do: %v, want ErrInvalidPolicy", err)
	}
}

func TestSleepTimer(t *testing.T) {
	if err := SleepTimer(context.Background(), 0); err != nil {
		t.Errorf("zero sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepTimer(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled sleep: %v", err)
	}
	if err := SleepTimer(context.Background(), time.Microsecond); err != nil {
		t.Errorf("short sleep: %v", err)
	}
}
