package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// maxBodyBytes bounds a submit request body; specs are small JSON
// documents, so anything bigger is garbage or abuse.
const maxBodyBytes = 64 << 10

// tenantHeader names the submitting tenant; absent, the submission is
// attributed to "anonymous" (which gets DefaultLimits like any other
// unlisted tenant).
const tenantHeader = "X-Tenant"

// Handler returns the job API plus the observability endpoints:
//
//	POST /v1/jobs             submit (JSON JobSpec; 202 + id, 400, 429, 503)
//	GET  /v1/jobs             list all known jobs
//	GET  /v1/jobs/{id}        status
//	GET  /v1/jobs/{id}/events NDJSON progress stream (follows until terminal)
//	GET  /v1/jobs/{id}/labels terminal labels as PGM
//	POST /v1/admin/migrate    planned handoff: drain a job to the peer
//	GET  /healthz             200 serving / 503 draining|standby|fenced
//	/metrics, /debug/vars, /debug/pprof  server-wide obs registry
//
// On a standby node the replication receiver (internal/serve/migrate)
// is mounted under /v1/repl/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/labels", s.handleLabels)
	mux.HandleFunc("POST /v1/admin/migrate", s.handleMigrate)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.standby != nil {
		mux.Handle("/v1/repl/", s.standby.Handler())
	}
	mux.Handle("/", obs.Handler(s.reg))
	return mux
}

// statusView is the wire form of a job's status.
type statusView struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant"`
	State       State  `json:"state"`
	Terminal    bool   `json:"terminal"`
	Attempts    int    `json:"attempts"`
	Sweeps      int    `json:"sweeps"`
	Error       string `json:"error,omitempty"`
	Digest      string `json:"digest,omitempty"`
	FaultPolicy string `json:"fault_policy,omitempty"`
	Peer        string `json:"peer,omitempty"`
}

func viewOf(rec jobRecord, st jobStatus) statusView {
	return statusView{
		ID: rec.ID, Tenant: rec.Tenant,
		State: st.State, Terminal: st.State.Terminal(),
		Attempts: st.Attempts, Sweeps: st.Sweeps,
		Error: st.Error, Digest: st.Digest, FaultPolicy: st.FaultPolicy,
		Peer: st.Peer,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(tenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrInvalidSpec, err))
		return
	}
	id, err := s.Submit(tenant, spec)
	if err != nil {
		var shed *ShedError
		switch {
		case errors.As(err, &shed):
			w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining), errors.Is(err, ErrNotActive):
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfterHint))
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrInvalidSpec):
			writeErr(w, http.StatusBadRequest, err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	rec, st, _ := s.Job(id)
	writeJSON(w, http.StatusAccepted, viewOf(rec, st))
}

// retryAfterSeconds renders a Retry-After header value (integral
// seconds, minimum 1 — a zero hint would tell clients to hammer).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	recs := s.Jobs()
	views := make([]statusView, 0, len(recs))
	for _, rec := range recs {
		_, st, err := s.Job(rec.ID)
		if err != nil {
			continue
		}
		views = append(views, viewOf(rec, st))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec, st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(rec, st))
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := s.Labels(id)
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, ErrUnknownJob) {
			code = http.StatusNotFound
		}
		writeErr(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "image/x-portable-graymap")
	_, _ = w.Write(data)
}

// handleEvents streams the job's NDJSON progress events, following
// live appends until the job reaches a terminal state or the client
// disconnects. `?follow=0` returns the buffered events and closes.
// While following, a heartbeat line goes out every EventsHeartbeat so
// a queued or slow-sweeping job cannot be mistaken for a dead stream
// (and idle-connection middleboxes keep the socket open).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownJob, id))
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var beat <-chan time.Time
	if follow && s.cfg.EventsHeartbeat > 0 {
		t := time.NewTicker(s.cfg.EventsHeartbeat)
		defer t.Stop()
		beat = t.C
	}
	off := 0
	for {
		chunk, closed, wake := j.events.snapshot(off)
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			off += len(chunk)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if closed || !follow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-beat:
			if _, err := w.Write([]byte("{\"kind\":\"heartbeat\"}\n")); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// handleMigrate starts a planned handoff of one job to the configured
// peer ({"id": "..."}). 202 means the drain is armed; poll the job for
// the migrated state.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
	if err := dec.Decode(&req); err != nil || req.ID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("serve: body must be {\"id\": \"<job>\"}"))
		return
	}
	err := s.MigrateJob(req.ID)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": req.ID, "state": string(StateMigrating)})
	case errors.Is(err, ErrUnknownJob):
		writeErr(w, http.StatusNotFound, err)
	default:
		writeErr(w, http.StatusConflict, err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fenced, active, draining := s.fenced, s.active, s.draining
	s.mu.Unlock()
	switch {
	case fenced:
		// No Retry-After: fencing is permanent for this process.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "fenced"})
	case draining:
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfterHint))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !active:
		status := "awaiting-lease"
		if s.standby != nil {
			status = "standby"
		}
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfterHint))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": status})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "serving"})
	}
}
