package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/migrate"
)

// TestEventsStreamHeartbeat pins the liveness contract of a followed
// events stream: while a job sits queued (or runs between events), the
// server emits heartbeat lines at EventsHeartbeat cadence so clients
// can tell a quiet job from a dead connection.
func TestEventsStreamHeartbeat(t *testing.T) {
	cfg := testConfig(t)
	cfg.EventsHeartbeat = 20 * time.Millisecond
	s := newServer(t, cfg) // never started: the job stays queued
	id, err := s.Submit("alice", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events -> %d", resp.StatusCode)
	}
	beats := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "heartbeat" {
			beats++
			if beats >= 3 {
				break
			}
		}
	}
	if beats < 3 {
		t.Fatalf("saw %d heartbeat lines, want >= 3 (scan err %v, ctx %v)", beats, sc.Err(), ctx.Err())
	}
}

// TestCorruptCheckpointRestartsFromScratch pins the ErrCorrupt retry
// path end to end: a drained job's snapshot is bit-flipped on disk, the
// restarted server detects the damage on resume, drops the snapshot,
// reruns the chain from sweep zero, and still produces the exact digest
// of an uninterrupted run.
func TestCorruptCheckpointRestartsFromScratch(t *testing.T) {
	spec := testSpec()
	spec.Iterations = 400

	golden := startServer(t, testConfig(t))
	gid, err := golden.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	gst := waitTerminal(t, golden, gid, 120*time.Second)
	if gst.State != StateDone {
		t.Fatalf("golden: %s (%s)", gst.State, gst.Error)
	}

	// Run 1: start the job, wait for a durable snapshot, drain.
	cfg := testConfig(t)
	s1 := newServer(t, cfg)
	ctx1, cancel1 := context.WithCancel(context.Background())
	if err := s1.Start(ctx1); err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := s1.store.CheckpointPath(id)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never wrote a snapshot")
		}
		time.Sleep(2 * time.Millisecond)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	dcancel()
	cancel1()

	// Corrupt the parked snapshot: one flipped bit mid-payload.
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(ckptPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Run 2: recovery resumes the job, trips on the corrupt snapshot,
	// and must converge to the golden digest anyway.
	cfg2 := cfg
	cfg2.Recorder = obs.New()
	s2 := startServer(t, cfg2)
	st := waitTerminal(t, s2, id, 120*time.Second)
	if st.State != StateDone {
		t.Fatalf("after corrupt restart: %s (%s)", st.State, st.Error)
	}
	if st.Sweeps != spec.Iterations {
		t.Errorf("sweeps %d, want the full budget %d", st.Sweeps, spec.Iterations)
	}
	if st.Digest != gst.Digest {
		t.Errorf("digest %s != golden %s — restart-from-scratch is not clean", st.Digest, gst.Digest)
	}
	if got := counterValue(cfg2.Recorder, "serve.ckpt.corrupt_dropped"); got < 1 {
		t.Errorf("serve.ckpt.corrupt_dropped = %d, want >= 1", got)
	}
	if got := counterValue(cfg2.Recorder, "serve.retries"); got < 1 {
		t.Errorf("serve.retries = %d, want >= 1", got)
	}
}

// twoNodeCluster builds an in-process primary+standby pair wired over
// a real HTTP boundary, with the standby's failure detector tuned slow
// enough that only an explicit action (not scheduling noise) can move
// ownership.
func twoNodeCluster(t *testing.T) (primary, standby *Server, peerURL string) {
	t.Helper()
	sbCfg := testConfig(t)
	sbCfg.Migrate = &migrate.Config{
		NodeID:         "node-b",
		Standby:        true,
		LeaseTTL:       time.Hour,
		HeartbeatEvery: time.Hour,
		MissLimit:      1000,
	}
	sb := startServer(t, sbCfg)
	ts := httptest.NewServer(sb.Handler())
	t.Cleanup(ts.Close)

	prCfg := testConfig(t)
	prCfg.Migrate = &migrate.Config{
		NodeID:         "node-a",
		Peer:           ts.URL,
		LeaseTTL:       time.Hour,
		HeartbeatEvery: time.Hour,
		MissLimit:      1000,
	}
	pr := startServer(t, prCfg)
	deadline := time.Now().Add(30 * time.Second)
	for !pr.Active() {
		if time.Now().After(deadline) {
			t.Fatal("primary never acquired its lease")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return pr, sb, ts.URL
}

// TestPlannedHandoffMigratesRunningJob drives the whole planned-
// migration path in-process: a running chain is drained to the peer at
// a sweep boundary, the primary parks it as migrated (with the peer
// recorded), and the standby finishes the chain bit-exactly.
func TestPlannedHandoffMigratesRunningJob(t *testing.T) {
	spec := testSpec()
	spec.Iterations = 400

	golden := startServer(t, testConfig(t))
	gid, err := golden.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	gst := waitTerminal(t, golden, gid, 120*time.Second)
	if gst.State != StateDone {
		t.Fatalf("golden: %s (%s)", gst.State, gst.Error)
	}

	pr, sb, peerURL := twoNodeCluster(t)
	id, err := pr.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the chain is demonstrably running, then arm the drain.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, st, jerr := pr.Job(id)
		if jerr != nil {
			t.Fatal(jerr)
		}
		if st.State == StateRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job finished (%s) before the handoff could arm", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	if err := pr.MigrateJob(id); err != nil {
		t.Fatal(err)
	}

	// The primary parks the job as migrated, naming the peer.
	pst := waitTerminal(t, pr, id, 120*time.Second)
	if pst.State != StateMigrated {
		t.Fatalf("primary state %s (%s), want migrated", pst.State, pst.Error)
	}
	if pst.Peer != peerURL {
		t.Errorf("migrated peer %q, want %q", pst.Peer, peerURL)
	}

	// The standby adopted it and finishes the chain bit-exactly.
	sst := waitTerminal(t, sb, id, 120*time.Second)
	if sst.State != StateDone {
		t.Fatalf("standby state %s (%s), want done", sst.State, sst.Error)
	}
	if sst.Sweeps != spec.Iterations {
		t.Errorf("standby sweeps %d, want the full budget %d", sst.Sweeps, spec.Iterations)
	}
	if sst.Digest != gst.Digest {
		t.Errorf("standby digest %s != golden %s — handoff resume is not byte-exact", sst.Digest, gst.Digest)
	}

	// Ledger of record on both sides.
	if got := counterValue(pr.reg, "serve.migrate.jobs_migrated"); got != 1 {
		t.Errorf("primary serve.migrate.jobs_migrated = %d, want 1", got)
	}
	if got := counterValue(sb.reg, "serve.migrate.jobs_adopted"); got != 1 {
		t.Errorf("standby serve.migrate.jobs_adopted = %d, want 1", got)
	}
}

// TestMigrateJobErrors pins the admin surface's refusals: no peer
// configured, unknown job, and already-terminal jobs.
func TestMigrateJobErrors(t *testing.T) {
	s := startServer(t, testConfig(t))
	if err := s.MigrateJob("nope-000000"); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("migrate without peer: %v, want ErrNoPeer", err)
	}

	pr, _, _ := twoNodeCluster(t)
	if err := pr.MigrateJob("nope-000000"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("migrate unknown job: %v, want ErrUnknownJob", err)
	}
	id, err := pr.Submit("alice", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, pr, id, 120*time.Second)
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if err := pr.MigrateJob(id); err == nil {
		t.Fatal("migrating a terminal job succeeded")
	}
}
