package serve

// The failover chaos matrix: a real two-node cluster built from the
// same self-exec harness as chaos_test.go. A standby comes up first,
// a primary leases against it and starts taking jobs, and once the
// standby has durably installed a seeded-random number of replicated
// chain snapshots the primary is SIGKILLed mid-stream. The failure
// detector must promote the standby, the standby must drive every
// accepted job to a terminal state at a different worker count with
// digests byte-identical to an uninterrupted golden run, and a
// resurrected primary on the old state directory must find itself
// fenced — permanently unable to serve.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
)

// httpHealth returns /healthz's status code and reported status string.
func httpHealth(addr string) (int, string, error) {
	resp, err := http.DefaultClient.Get("http://" + addr + "/healthz")
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
	return resp.StatusCode, body.Status, nil
}

// waitHealth polls /healthz until it reports wantCode/wantStatus.
func waitHealth(t *testing.T, addr string, wantCode int, wantStatus string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var code int
	var status string
	var err error
	for time.Now().Before(deadline) {
		code, status, err = httpHealth(addr)
		if err == nil && code == wantCode && (wantStatus == "" || status == wantStatus) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("healthz on %s: last %d %q (err %v), want %d %q", addr, code, status, err, wantCode, wantStatus)
}

// countCkpts counts installed chain snapshots under a state directory.
func countCkpts(stateDir string) int {
	entries, _ := os.ReadDir(filepath.Join(stateDir, "ckpt"))
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			n++
		}
	}
	return n
}

func TestMigrateChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("two-node failover chaos matrix skipped in -short mode")
	}
	all := chaosSpecs()
	specs := append(append([]JobSpec{}, all[:6]...), all[len(all)-1])
	deadlineIdx := len(specs) - 1

	// Golden digests: an uninterrupted in-process server at W=1.
	goldenCfg := testConfig(t)
	goldenCfg.WorkerOverride = 1
	golden := startServer(t, goldenCfg)
	goldenDigest := make([]string, deadlineIdx)
	for i, spec := range specs[:deadlineIdx] {
		id, err := golden.Submit("golden", spec)
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, golden, id, 120*time.Second)
		if st.State != StateDone {
			t.Fatalf("golden job %d: %s (%s)", i, st.State, st.Error)
		}
		goldenDigest[i] = st.Digest
	}

	// The standby boots first (nothing to receive yet, health says so).
	stateB := t.TempDir()
	srvB, addrB := startChaosServer(t, stateB, 3,
		"SERVE_CHAOS_STANDBY=1", "SERVE_CHAOS_NODE=node-b")
	defer func() { _ = srvB.Process.Kill() }()
	waitHealth(t, addrB, http.StatusServiceUnavailable, "standby", 30*time.Second)

	// The primary leases against it and turns active.
	stateA := t.TempDir()
	primaryEnv := []string{
		"SERVE_CHAOS_PEER=http://" + addrB,
		"SERVE_CHAOS_NODE=node-a",
	}
	srvA, addrA := startChaosServer(t, stateA, 2, primaryEnv...)
	killedA := false
	defer func() {
		if !killedA {
			_ = srvA.Process.Kill()
		}
	}()
	waitHealth(t, addrA, http.StatusOK, "serving", 30*time.Second)

	// Jobs flow into the primary from two tenants.
	ids := make([]string, len(specs))
	for i, spec := range specs {
		tenant := "alice"
		if i%2 == 1 {
			tenant = "bob"
		}
		ids[i] = httpSubmit(t, addrA, tenant, spec)
	}

	// Kill trigger: the standby holds at least killAfter fully installed
	// replicated snapshots — the cluster is demonstrably mid-replication.
	// The threshold comes from a seeded stream: randomized, reproducible.
	src := rng.New(0x16A7E)
	killAfter := 1 + src.Intn(3)
	killDeadline := time.Now().Add(120 * time.Second)
	for countCkpts(stateB) < killAfter {
		if time.Now().After(killDeadline) {
			t.Fatalf("standby never installed %d snapshots (have %d)", killAfter, countCkpts(stateB))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := srvA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killedA = true
	_ = srvA.Wait()

	// The failure detector promotes the standby; it starts serving.
	waitHealth(t, addrB, http.StatusOK, "serving", 60*time.Second)

	// Every accepted job reaches a terminal state on the standby, at
	// W=3, bit-exact against the golden W=1 run.
	final := make([]statusView, len(ids))
	allDeadline := time.Now().Add(180 * time.Second)
	for i, id := range ids {
		for {
			if time.Now().After(allDeadline) {
				t.Fatalf("job %s not terminal on the standby (last: %+v)", id, final[i])
			}
			view, err := httpStatus(t, addrB, id)
			if err == nil {
				final[i] = view
				if view.Terminal {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for i, view := range final {
		if i == deadlineIdx {
			if view.State != StateExpired {
				t.Errorf("deadline job: state %s (error %q), want deadline-exceeded", view.State, view.Error)
			} else if view.Sweeps <= 0 {
				t.Errorf("deadline job: partial sweeps %d, want > 0", view.Sweeps)
			}
			continue
		}
		if view.State != StateDone {
			t.Errorf("job %d (%s): state %s (error %q), want done", i, view.ID, view.State, view.Error)
			continue
		}
		if view.Sweeps != specs[i].Iterations {
			t.Errorf("job %d: sweeps %d, want the full budget %d", i, view.Sweeps, specs[i].Iterations)
		}
		if view.Digest != goldenDigest[i] {
			t.Errorf("job %d (%s): digest %s != golden %s — failover resume is not byte-exact",
				i, view.ID, view.Digest, goldenDigest[i])
		}
	}

	// The standby's metrics admit the takeover happened.
	resp, err := http.DefaultClient.Get("http://" + addrB + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "serve_migrate_takeovers") {
		t.Error("standby /metrics missing serve_migrate_takeovers after failover")
	}

	// A resurrected primary on the old state directory is fenced: its
	// lease is refused outright and it must refuse to serve — the
	// split-brain door stays shut.
	srvA2, addrA2 := startChaosServer(t, stateA, 2, primaryEnv...)
	defer func() { _ = srvA2.Process.Kill() }()
	waitHealth(t, addrA2, http.StatusServiceUnavailable, "fenced", 30*time.Second)

	// And it rejects submissions while fenced.
	body := []byte(fmt.Sprintf(`{"app":"segmentation","size":16,"labels":3,"iterations":20,"seed":5,"scene_seed":41}`))
	req, _ := http.NewRequest("POST", "http://"+addrA2+"/v1/jobs", strings.NewReader(string(body)))
	req.Header.Set(tenantHeader, "alice")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit to fenced primary -> %d, want 503", resp.StatusCode)
	}
}
