// Package serve is the inference-as-a-service layer (ROADMAP item 1):
// a multi-tenant job runtime that admits MRF inference jobs through a
// bounded, load-shedding queue, runs them on a sharded pool of solver
// workers, and survives both graceful drains (SIGTERM → checkpoint →
// restart → resume) and outright SIGKILL with no job lost and no job
// completed twice.
//
// Robustness invariants, in the order the request path meets them:
//
//   - Admission is never unbounded: a full queue, an empty tenant token
//     bucket, or an exhausted tenant quota sheds the submit with a typed
//     ShedError (HTTP 429 + Retry-After) instead of blocking.
//   - Every accepted job is durable before the client learns its ID
//     (journal record fsynced first), and reaches exactly one terminal
//     state: done, deadline-exceeded (with the partial labels and sweep
//     count the chain reached), or failed.
//   - Per-job deadlines ride the PR 4 context plumbing: expiry stops the
//     chain at a sweep boundary and keeps the partial result.
//   - Transient attempt failures retry with exponential backoff and
//     deterministic jitter (internal/serve/backoff); the jitter stream
//     is derived from the server's BackoffSeed and the job sequence,
//     never from the solver's chain streams, so retrying cannot change
//     a single sampled label. Permanent errors (invalid configs,
//     checkpoint fingerprint mismatches) never retry.
//   - Fault-degraded attempts escalate the degradation policy
//     (→ quarantine → fallback) instead of failing outright.
//   - Drain stops admission, cancels in-flight chains (each writes a
//     final checkpoint at its sweep boundary), parks them as preempted,
//     and a restarted server resumes them bit-exactly — fingerprint
//     checked, worker-count invariant — per the checkpoint guarantees.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve/backoff"
)

// ErrInvalidConfig is wrapped by every server-configuration error.
var ErrInvalidConfig = errors.New("serve: invalid config")

// ErrDraining rejects submissions while the server is shutting down.
var ErrDraining = errors.New("serve: draining")

// ErrUnknownJob marks status/labels lookups for IDs never accepted.
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrDegraded is the transient failure produced when a fault-armed
// attempt completes with unaccounted injected faults — the monitors
// missed real damage, so the result cannot be trusted. The retry runs
// under an escalated degradation policy.
var ErrDegraded = errors.New("serve: fault degradation exceeded policy")

// errPreempted marks an attempt stopped by drain/shutdown rather than
// by its own failure; the job parks as preempted and resumes after
// restart.
var errPreempted = errors.New("serve: preempted")

// ShedError is a load-shedding admission rejection: the client should
// retry after the hinted delay. The HTTP layer renders it as 429 +
// Retry-After.
type ShedError struct {
	// Reason is the shed class: "queue-full" | "rate-limited" | "quota".
	Reason string
	// RetryAfter hints when capacity should exist again.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: shed (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Config shapes a Server.
type Config struct {
	// StateDir is the durable root: job journal, chain snapshots,
	// terminal outputs. Required.
	StateDir string
	// QueueDepth bounds the admission queue; submits past it are shed
	// with 429 (default 64).
	QueueDepth int
	// Shards is the number of solver workers pulling from the queue
	// (default 2). Each runs one job at a time; per-job checkerboard
	// parallelism inside a solve is the job's Workers setting.
	Shards int
	// WorkerOverride, when positive, replaces every job's requested
	// Workers — safe because seeded results are worker-count-invariant,
	// and exactly what the chaos harness uses to prove W=1↔W=N resume.
	WorkerOverride int
	// ModelCacheSize is the compile-cache capacity in checked-in app
	// instances (default 8; 0 keeps the default, negative disables).
	ModelCacheSize int
	// CheckpointEverySweeps is the per-job snapshot cadence (default 1:
	// every sweep boundary is durable, the strongest resume guarantee).
	CheckpointEverySweeps int
	// Retry is the transient-failure backoff policy. Zero value gets
	// the serving default (3 retries, 100ms base, 2s cap, 0.5 jitter).
	Retry backoff.Policy
	// BackoffSeed derives the per-job jitter streams (seed ^ job seq).
	// Deliberately separate from every chain seed.
	BackoffSeed uint64
	// Tenants maps tenant names to their limits; unlisted tenants get
	// DefaultLimits.
	Tenants map[string]TenantLimits
	// DefaultLimits applies to tenants absent from Tenants (zero value:
	// unlimited rate, unlimited quota).
	DefaultLimits TenantLimits
	// RetryAfterHint is the Retry-After returned on queue-full sheds
	// (default 1s).
	RetryAfterHint time.Duration
	// Recorder is the server-wide metrics registry (default: a fresh
	// obs.New()). Queue-depth and in-flight gauges, shed/retry/deadline
	// counters, per-tenant counters and job-latency histograms land
	// here; /metrics serves it.
	Recorder *obs.Registry
	// Now supplies the wall clock (default time.Now — injected so tests
	// and the detrand determinism discipline control time).
	Now func() time.Time
	// Sleep waits out backoff delays (default backoff.SleepTimer).
	Sleep backoff.SleepFunc

	// preSolve is a test hook invoked before each solve attempt; a
	// non-nil return is handled exactly like a solver error. Unexported:
	// only this package's tests can arm it.
	preSolve func(jobID string, attempt int) error
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.ModelCacheSize == 0 {
		cfg.ModelCacheSize = 8
	}
	if cfg.CheckpointEverySweeps == 0 {
		cfg.CheckpointEverySweeps = 1
	}
	if cfg.Retry.Base == 0 && cfg.Retry.MaxRetries == 0 {
		cfg.Retry = backoff.Policy{
			Base:       100 * time.Millisecond,
			Cap:        2 * time.Second,
			Factor:     2,
			Jitter:     0.5,
			MaxRetries: 3,
		}
	}
	if cfg.RetryAfterHint == 0 {
		cfg.RetryAfterHint = time.Second
	}
	if cfg.Recorder == nil {
		cfg.Recorder = obs.New()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = backoff.SleepTimer
	}
	return cfg
}

// Validate checks the configuration, wrapping ErrInvalidConfig.
func (cfg Config) Validate() error {
	if cfg.StateDir == "" {
		return fmt.Errorf("%w: StateDir is required", ErrInvalidConfig)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("%w: QueueDepth %d < 0", ErrInvalidConfig, cfg.QueueDepth)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("%w: Shards %d < 0", ErrInvalidConfig, cfg.Shards)
	}
	if cfg.WorkerOverride < 0 || cfg.WorkerOverride > MaxSpecWorkers {
		return fmt.Errorf("%w: WorkerOverride %d outside [0,%d]", ErrInvalidConfig, cfg.WorkerOverride, MaxSpecWorkers)
	}
	if cfg.CheckpointEverySweeps < 0 {
		return fmt.Errorf("%w: CheckpointEverySweeps %d < 0", ErrInvalidConfig, cfg.CheckpointEverySweeps)
	}
	if err := cfg.Retry.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if err := cfg.DefaultLimits.Validate(); err != nil {
		return err
	}
	for name, tl := range cfg.Tenants {
		if !tenantName.MatchString(name) {
			return fmt.Errorf("%w: tenant name %q (want %s)", ErrInvalidConfig, name, tenantName)
		}
		if err := tl.Validate(); err != nil {
			return fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	return nil
}

// Server is the multi-tenant inference daemon runtime. Construct with
// New (which also recovers the journal), start the shard pool with
// Start, serve Handler over HTTP, and stop with Drain.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	store *store
	cache *appCache

	mu       sync.Mutex
	jobs     map[string]*job
	queue    chan *job
	queued   int // client-admitted jobs currently in the queue
	running  int
	seq      uint64
	tenants  map[string]*tenantState
	draining bool
	started  bool

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
}

// New validates the configuration, opens the state directory, and
// recovers the journal: every non-terminal job found there is re-queued
// with resume armed, in original admission order, ahead of any new
// submissions. Terminal jobs stay addressable for status and labels.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	st, err := newStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Recorder,
		store:   st,
		cache:   newAppCache(cfg.ModelCacheSize),
		jobs:    map[string]*job{},
		tenants: map[string]*tenantState{},
	}
	recs, err := st.Load()
	if err != nil {
		return nil, err
	}
	var recovered []*job
	for _, rec := range recs {
		status, err := st.GetStatus(rec.ID)
		if err != nil {
			return nil, err
		}
		if rec.Seq >= s.seq {
			s.seq = rec.Seq + 1
		}
		j := newJob(rec, status)
		s.jobs[rec.ID] = j
		if status.State.Terminal() {
			j.events.Close()
			continue
		}
		j.resumed = status.Sweeps > 0 || status.Attempts > 0
		j.setState(func(st *jobStatus) { st.State = StateQueued })
		if err := st.PutStatus(rec.ID, j.Status()); err != nil {
			return nil, err
		}
		recovered = append(recovered, j)
		s.tenant(rec.Tenant).inflight++
	}
	// The queue channel is sized so that recovery plus a full client
	// admission window can never block a push: shedding is enforced by
	// the queued counter, not by channel capacity.
	s.queue = make(chan *job, cfg.QueueDepth+len(recovered)+1)
	for _, j := range recovered {
		s.queue <- j
		s.queued++
		obs.Add(s.reg, "serve.jobs.recovered", 1)
	}
	s.gauges()
	return s, nil
}

// tenant returns (creating on first use) the tenant's state. Callers
// hold s.mu or are in single-threaded construction.
func (s *Server) tenant(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		tl, listed := s.cfg.Tenants[name]
		if !listed {
			tl = s.cfg.DefaultLimits
		}
		t = newTenantState(tl, s.cfg.Now())
		s.tenants[name] = t
	}
	return t
}

// Start launches the shard pool under ctx. Canceling ctx is a hard
// stop (jobs park as preempted at their next sweep boundary); prefer
// Drain for the graceful path.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("%w: Start called twice", ErrInvalidConfig)
	}
	s.started = true
	s.runCtx, s.cancelRun = context.WithCancel(ctx)
	for i := 0; i < s.cfg.Shards; i++ {
		s.wg.Add(1)
		go func(shard int) {
			defer s.wg.Done()
			s.shardLoop(s.runCtx, shard)
		}(i)
	}
	return nil
}

// Drain gracefully stops the server: admission turns off (submits get
// ErrDraining), every in-flight chain is canceled and writes its final
// checkpoint at the next sweep boundary, queued jobs stay journaled,
// and the shard pool exits. Returns once all shards have parked or ctx
// expires. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	wasStarted := s.started
	s.draining = true
	s.gaugesLocked()
	if s.cancelRun != nil {
		s.cancelRun()
	}
	s.mu.Unlock()
	if !wasStarted {
		return nil
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
	// Shards are parked; end every live event stream so followers drain
	// and disconnect (otherwise they would pin the HTTP shutdown).
	s.mu.Lock()
	for _, j := range s.jobs {
		j.events.Close()
	}
	s.mu.Unlock()
	return nil
}

// Draining reports whether admission is off.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Metrics returns the server-wide registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Submit admits one job for tenant: spec validation, tenant token
// bucket, tenant quota, then a bounded-queue reservation — shedding
// with a typed ShedError at the first limit hit — and only then the
// durable journal write that makes the job real. Never blocks on queue
// capacity.
func (s *Server) Submit(tenant string, spec JobSpec) (id string, err error) {
	if !tenantName.MatchString(tenant) {
		return "", fmt.Errorf("%w: tenant name %q (want %s)", ErrInvalidSpec, tenant, tenantName)
	}
	if err := spec.Validate(); err != nil {
		obs.Add(s.reg, "serve.jobs.rejected", 1)
		return "", err
	}
	spec = spec.withDefaults()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.draining", 1)
		return "", ErrDraining
	}
	t := s.tenant(tenant)
	if ok, retry := t.admit(s.cfg.Now()); !ok {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.rate", 1)
		obs.Add(s.reg, "serve.tenant."+tenant+".shed", 1)
		return "", &ShedError{Reason: "rate-limited", RetryAfter: retry}
	}
	if !t.quotaOK() {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.quota", 1)
		obs.Add(s.reg, "serve.tenant."+tenant+".shed", 1)
		return "", &ShedError{Reason: "quota", RetryAfter: s.cfg.RetryAfterHint}
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.queue", 1)
		obs.Add(s.reg, "serve.tenant."+tenant+".shed", 1)
		return "", &ShedError{Reason: "queue-full", RetryAfter: s.cfg.RetryAfterHint}
	}
	seq := s.seq
	s.seq++
	rec := jobRecord{
		ID:     fmt.Sprintf("%s-%06d", tenant, seq),
		Tenant: tenant,
		Seq:    seq,
		Spec:   spec,
	}
	j := newJob(rec, jobStatus{State: StateQueued})
	// Reserve the slot before releasing the lock so concurrent submits
	// see the queue fill immediately; roll back if the journal write
	// fails.
	s.jobs[rec.ID] = j
	s.queued++
	t.inflight++
	s.gaugesLocked()
	s.mu.Unlock()

	if err := s.store.PutRecord(rec); err != nil {
		s.mu.Lock()
		delete(s.jobs, rec.ID)
		s.queued--
		t.inflight--
		s.gaugesLocked()
		s.mu.Unlock()
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	s.emitState(j, j.Status(), 0)
	s.queue <- j
	obs.Add(s.reg, "serve.jobs.accepted", 1)
	obs.Add(s.reg, "serve.tenant."+tenant+".accepted", 1)
	return rec.ID, nil
}

// Job returns the job's record and current status.
func (s *Server) Job(id string) (jobRecord, jobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return jobRecord{}, jobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.rec, j.Status(), nil
}

// Jobs lists every known job ID in admission order.
func (s *Server) Jobs() []jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]jobRecord, 0, len(s.jobs))
	for _, j := range s.jobs {
		recs = append(recs, j.rec)
	}
	for i := 1; i < len(recs); i++ { // insertion sort by seq; list endpoints are cold
		for k := i; k > 0 && recs[k-1].Seq > recs[k].Seq; k-- {
			recs[k-1], recs[k] = recs[k], recs[k-1]
		}
	}
	return recs
}

// Labels returns the terminal label bytes (PGM) for a done or expired
// job.
func (s *Server) Labels(id string) ([]byte, error) {
	_, status, err := s.Job(id)
	if err != nil {
		return nil, err
	}
	switch status.State {
	case StateDone, StateExpired:
		return os.ReadFile(s.store.LabelsPath(id))
	default:
		return nil, fmt.Errorf("serve: job %s not terminal (state %s)", id, status.State)
	}
}

// shardLoop pulls jobs until the run context dies.
func (s *Server) shardLoop(ctx context.Context, shard int) {
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.queue:
			s.mu.Lock()
			s.queued--
			s.running++
			s.gaugesLocked()
			s.mu.Unlock()
			s.runJob(ctx, j)
			s.mu.Lock()
			s.running--
			s.gaugesLocked()
			s.mu.Unlock()
		}
	}
}

// runJob drives one job to a terminal or parked state: the backoff.Do
// retry loop around attempts, permanent-error classification, and the
// final bookkeeping (tenant quota release, latency histogram).
func (s *Server) runJob(ctx context.Context, j *job) {
	start := s.cfg.Now()
	// The jitter stream is keyed by the job's admission sequence and the
	// server's backoff seed — disjoint by construction from every chain
	// seed, which only ever reaches rng.New through gibbs.Run.
	jitter := rng.New(s.cfg.BackoffSeed ^ (j.rec.Seq+1)*0x9e3779b97f4a7c15)
	policy := s.cfg.Retry
	policy.Permanent = append(append([]error(nil), policy.Permanent...),
		core.ErrInvalidConfig, ErrInvalidSpec, checkpoint.ErrMismatch, checkpoint.ErrVersion)

	err := backoff.Do(ctx, policy, jitter, s.cfg.Sleep, func(ctx context.Context, attempt int) (aerr error) {
		// A panicking attempt (hostile spec reaching an assertion, a bug
		// in one workload) fails that job permanently instead of taking
		// down the daemon and every other tenant's jobs with it.
		defer func() {
			if r := recover(); r != nil {
				obs.Add(s.reg, "serve.attempt.panics", 1)
				aerr = backoff.Permanent(fmt.Errorf("serve: attempt panic: %v", r))
			}
		}()
		return s.attempt(ctx, j, attempt)
	})

	s.mu.Lock()
	tenant := s.tenant(j.rec.Tenant)
	s.mu.Unlock()

	switch {
	case err == nil:
		// Terminal state (done or deadline-exceeded) already persisted
		// by the attempt.
	case errors.Is(err, errPreempted), ctx.Err() != nil:
		// Parked, not terminal: quota stays held on the journal, and the
		// restarted server re-counts it during recovery. The ctx.Err()
		// arm catches a drain landing mid-backoff-wait — Do surfaces the
		// attempt's transient error then, not a preemption marker.
		if !errors.Is(err, errPreempted) {
			s.persist(j, 0, func(st *jobStatus) { st.State = StatePreempted })
			obs.Add(s.reg, "serve.jobs.preempted", 1)
		}
	default:
		obs.Add(s.reg, "serve.jobs.failed", 1)
		s.persist(j, 0, func(st *jobStatus) {
			st.State = StateFailed
			st.Error = err.Error()
		})
	}

	status := j.Status()
	if status.State.Terminal() {
		j.events.Close()
		s.mu.Lock()
		tenant.inflight--
		s.gaugesLocked()
		s.mu.Unlock()
		s.reg.Observe("serve.job.latency_seconds", s.cfg.Now().Sub(start).Seconds())
		obs.Add(s.reg, "serve.tenant."+j.rec.Tenant+".terminal", 1)
	}
}

// attempt runs one solve attempt end to end and persists any terminal
// outcome itself. Its error return drives retry classification only:
// nil for a terminal outcome (done or expired), errPreempted (wrapped
// Permanent) when the server is stopping, a transient error to back
// off and retry, or a permanent error to fail.
func (s *Server) attempt(ctx context.Context, j *job, attempt int) error {
	if ctx.Err() != nil {
		s.persist(j, attempt, func(st *jobStatus) { st.State = StatePreempted })
		obs.Add(s.reg, "serve.jobs.preempted", 1)
		return backoff.Permanent(errPreempted)
	}
	if hook := s.cfg.preSolve; hook != nil {
		if err := hook(j.rec.ID, attempt); err != nil {
			return s.attemptFailed(j, attempt, err)
		}
	}

	spec := j.rec.Spec
	prev := j.Status()
	faultPolicy := fault.PolicyRemap
	if prev.FaultPolicy != "" {
		p, err := fault.ParsePolicy(prev.FaultPolicy)
		if err != nil {
			return backoff.Permanent(fmt.Errorf("%w: %v", ErrInvalidSpec, err))
		}
		faultPolicy = p
	} else if spec.FaultPolicy != "" {
		p, err := fault.ParsePolicy(spec.FaultPolicy)
		if err != nil {
			return backoff.Permanent(fmt.Errorf("%w: %v", ErrInvalidSpec, err))
		}
		faultPolicy = p
	}

	workers := spec.Workers
	if s.cfg.WorkerOverride > 0 {
		workers = s.cfg.WorkerOverride
	}
	ckptPath := s.store.CheckpointPath(j.rec.ID)
	cfg, err := solverConfig(spec, faultPolicy, workers, ckptPath, s.cfg.CheckpointEverySweeps)
	if err != nil {
		return backoff.Permanent(err)
	}
	cfg.Recorder = j.reg

	key := spec.ModelKey()
	app := s.cache.Get(key)
	if app == nil {
		obs.Add(s.reg, "serve.cache.misses", 1)
		app, err = buildApp(spec)
		if err != nil {
			return backoff.Permanent(err)
		}
	} else {
		obs.Add(s.reg, "serve.cache.hits", 1)
	}
	defer func() {
		if r := recover(); r != nil {
			// Do not check a panicked-over instance back in — its state
			// is suspect and would poison later jobs. Re-panic for the
			// attempt-level containment above.
			panic(r)
		}
		s.cache.Put(key, app)
	}()

	solver, err := core.NewSolver(app, cfg)
	if err != nil {
		return s.attemptFailed(j, attempt, err)
	}

	s.persist(j, attempt, func(st *jobStatus) {
		st.State = StateRunning
		st.Attempts = attempt + 1
		st.FaultPolicy = faultPolicy.String()
		st.Error = ""
	})

	res, err := solver.Solve(ctx)

	switch {
	case err == nil:
		if spec.Faults != "" && res.FaultAudit != nil && res.FaultAudit.Summary.Unaccounted > 0 {
			return s.degraded(j, attempt, faultPolicy, res)
		}
		return s.finish(j, attempt, res, StateDone)
	case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
		// The job's own deadline (core applied Config.Deadline inside
		// this attempt) — terminal, with whatever the chain reached.
		obs.Add(s.reg, "serve.jobs.deadline_exceeded", 1)
		return s.finish(j, attempt, res, StateExpired)
	case ctx.Err() != nil:
		// Drain or hard stop: the final checkpoint is already durable
		// (written at the cancellation sweep boundary).
		s.persist(j, attempt, func(st *jobStatus) {
			st.State = StatePreempted
			if res != nil {
				st.Sweeps = res.Iterations
			}
		})
		obs.Add(s.reg, "serve.jobs.preempted", 1)
		return backoff.Permanent(errPreempted)
	default:
		return s.attemptFailed(j, attempt, err)
	}
}

// attemptFailed classifies an attempt error: permanent classes pass
// straight through (backoff.Do stops on them), transient ones persist
// the retry-wait state. A corrupt snapshot — external damage by the
// checkpoint layer's contract — is cleared so the retry restarts the
// chain from scratch.
func (s *Server) attemptFailed(j *job, attempt int, err error) error {
	if errors.Is(err, checkpoint.ErrCorrupt) {
		_ = os.Remove(s.store.CheckpointPath(j.rec.ID))
	}
	perm := errors.Is(err, core.ErrInvalidConfig) || errors.Is(err, ErrInvalidSpec) ||
		errors.Is(err, checkpoint.ErrMismatch) || errors.Is(err, checkpoint.ErrVersion)
	if !perm {
		obs.Add(s.reg, "serve.retries", 1)
		s.persist(j, attempt, func(st *jobStatus) {
			st.State = StateRetryWait
			st.Error = err.Error()
		})
	}
	return err
}

// degraded handles a fault-armed attempt whose audit shows unaccounted
// injected faults: escalate the degradation policy toward the exact
// CMOS fallback and retry on a fresh chain. An attempt already at
// fallback is accepted — the exact kernel is the strongest response
// available.
func (s *Server) degraded(j *job, attempt int, current fault.Policy, res *core.Result) error {
	next, ok := escalate(current)
	if !ok {
		return s.finish(j, attempt, res, StateDone)
	}
	// The policy is part of the checkpoint fingerprint, so the retry
	// cannot resume the degraded chain; drop the snapshot and start
	// clean under the stronger policy.
	_ = os.Remove(s.store.CheckpointPath(j.rec.ID))
	obs.Add(s.reg, "serve.retries", 1)
	obs.Add(s.reg, "serve.fault.escalations", 1)
	s.persist(j, attempt, func(st *jobStatus) {
		st.State = StateRetryWait
		st.Error = ErrDegraded.Error()
		st.FaultPolicy = next.String()
	})
	return fmt.Errorf("%w: escalating %v -> %v", ErrDegraded, current, next)
}

// escalate returns the next-stronger degradation policy.
func escalate(p fault.Policy) (fault.Policy, bool) {
	switch p {
	case fault.PolicyNone, fault.PolicyRemap, fault.PolicyResample:
		return fault.PolicyQuarantine, true
	case fault.PolicyQuarantine:
		return fault.PolicyFallback, true
	default:
		return p, false
	}
}

// finish persists a terminal result: labels first (durable before the
// status that advertises them), then the status flip. The label bytes
// are the raw label field as a PGM — byte-exact, so clients can golden-
// diff results across resumes.
func (s *Server) finish(j *job, attempt int, res *core.Result, state State) error {
	if res == nil {
		return s.attemptFailed(j, attempt, fmt.Errorf("serve: %s result missing", state))
	}
	lm := res.MAP
	if lm == nil {
		lm = res.Final
	}
	if lm == nil {
		return s.attemptFailed(j, attempt, fmt.Errorf("serve: %s result has no labels", state))
	}
	gray := &img.Gray{W: lm.W, H: lm.H, Pix: append([]uint8(nil), lm.Labels...)}
	var pgm pgmBuffer
	if err := img.EncodePGM(&pgm, gray); err != nil {
		return s.attemptFailed(j, attempt, err)
	}
	if err := s.store.PutLabels(j.rec.ID, pgm.data); err != nil {
		return s.attemptFailed(j, attempt, err)
	}
	digest := Digest(res)
	// Counters move before the state flips: pollers that observe the
	// terminal state must also observe its counters.
	if state == StateDone {
		obs.Add(s.reg, "serve.jobs.completed", 1)
		if j.resumed {
			obs.Add(s.reg, "serve.jobs.resumed_completed", 1)
		}
	}
	s.persist(j, attempt, func(st *jobStatus) {
		st.State = state
		st.Sweeps = res.Iterations
		st.Digest = digest
		st.Error = ""
	})
	return nil
}

// persist applies a status mutation: journal write first, then the
// job.state event, and only then the in-memory state that pollers see —
// so a client that observes a state has the matching journal entry and
// event stream available. Each job has a single persisting goroutine
// (its owning shard), which is what makes the preview/commit split
// race-free. Journal errors on status rewrites are recorded (counter)
// but do not fail the job: the record file plus the chain snapshot are
// what recovery needs.
func (s *Server) persist(j *job, attempt int, mut func(*jobStatus)) {
	status := j.previewState(mut)
	if err := s.store.PutStatus(j.rec.ID, status); err != nil {
		obs.Add(s.reg, "serve.journal.errors", 1)
	}
	s.emitState(j, status, attempt)
	j.commitState(status)
}

// emitState streams a job state transition into the event buffer.
func (s *Server) emitState(j *job, status jobStatus, attempt int) {
	fields := map[string]any{
		"job":    j.rec.ID,
		"tenant": j.rec.Tenant,
		"state":  string(status.State),
		"sweeps": status.Sweeps,
	}
	if attempt > 0 {
		fields["attempt"] = attempt
	}
	if status.Error != "" {
		fields["error"] = status.Error
	}
	obs.Emit(j.reg, "job.state", fields)
}

// gauges/gaugesLocked refresh the queue and in-flight gauges.
func (s *Server) gauges() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gaugesLocked()
}

func (s *Server) gaugesLocked() {
	s.reg.Gauge("serve.queue.depth", float64(s.queued))
	s.reg.Gauge("serve.jobs.running", float64(s.running))
	drain := 0.0
	if s.draining {
		drain = 1
	}
	s.reg.Gauge("serve.draining", drain)
}

// pgmBuffer is a minimal in-memory io.Writer for PGM encoding (avoids
// importing bytes just for a buffer).
type pgmBuffer struct{ data []byte }

func (b *pgmBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
