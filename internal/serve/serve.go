// Package serve is the inference-as-a-service layer (ROADMAP item 1):
// a multi-tenant job runtime that admits MRF inference jobs through a
// bounded, load-shedding queue, runs them on a sharded pool of solver
// workers, and survives both graceful drains (SIGTERM → checkpoint →
// restart → resume) and outright SIGKILL with no job lost and no job
// completed twice.
//
// Robustness invariants, in the order the request path meets them:
//
//   - Admission is never unbounded: a full queue, an empty tenant token
//     bucket, or an exhausted tenant quota sheds the submit with a typed
//     ShedError (HTTP 429 + Retry-After) instead of blocking.
//   - Every accepted job is durable before the client learns its ID
//     (journal record fsynced first), and reaches exactly one terminal
//     state: done, deadline-exceeded (with the partial labels and sweep
//     count the chain reached), or failed.
//   - Per-job deadlines ride the PR 4 context plumbing: expiry stops the
//     chain at a sweep boundary and keeps the partial result.
//   - Transient attempt failures retry with exponential backoff and
//     deterministic jitter (internal/serve/backoff); the jitter stream
//     is derived from the server's BackoffSeed and the job sequence,
//     never from the solver's chain streams, so retrying cannot change
//     a single sampled label. Permanent errors (invalid configs,
//     checkpoint fingerprint mismatches) never retry.
//   - Fault-degraded attempts escalate the degradation policy
//     (→ quarantine → fallback) instead of failing outright.
//   - Drain stops admission, cancels in-flight chains (each writes a
//     final checkpoint at its sweep boundary), parks them as preempted,
//     and a restarted server resumes them bit-exactly — fingerprint
//     checked, worker-count invariant — per the checkpoint guarantees.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve/backoff"
	"repro/internal/serve/migrate"
)

// ErrInvalidConfig is wrapped by every server-configuration error.
var ErrInvalidConfig = errors.New("serve: invalid config")

// ErrDraining rejects submissions while the server is shutting down.
var ErrDraining = errors.New("serve: draining")

// ErrUnknownJob marks status/labels lookups for IDs never accepted.
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrDegraded is the transient failure produced when a fault-armed
// attempt completes with unaccounted injected faults — the monitors
// missed real damage, so the result cannot be trusted. The retry runs
// under an escalated degradation policy.
var ErrDegraded = errors.New("serve: fault degradation exceeded policy")

// errPreempted marks an attempt stopped by drain/shutdown rather than
// by its own failure; the job parks as preempted and resumes after
// restart.
var errPreempted = errors.New("serve: preempted")

// ErrNotActive rejects submissions on a node that does not own the
// cluster lease: a standby, or a primary still acquiring its lease.
// The HTTP layer renders it as 503 + Retry-After.
var ErrNotActive = errors.New("serve: not active (standby or awaiting lease)")

// ErrNoPeer rejects migration requests on a server with no replication
// peer configured.
var ErrNoPeer = errors.New("serve: no migration peer configured")

// errMigrate marks an attempt stopped by a planned handoff rather than
// by its own failure; runJob hands the job off to the peer.
var errMigrate = errors.New("serve: migrating")

// ShedError is a load-shedding admission rejection: the client should
// retry after the hinted delay. The HTTP layer renders it as 429 +
// Retry-After.
type ShedError struct {
	// Reason is the shed class: "queue-full" | "rate-limited" | "quota".
	Reason string
	// RetryAfter hints when capacity should exist again.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: shed (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Config shapes a Server.
type Config struct {
	// StateDir is the durable root: job journal, chain snapshots,
	// terminal outputs. Required.
	StateDir string
	// QueueDepth bounds the admission queue; submits past it are shed
	// with 429 (default 64).
	QueueDepth int
	// Shards is the number of solver workers pulling from the queue
	// (default 2). Each runs one job at a time; per-job checkerboard
	// parallelism inside a solve is the job's Workers setting.
	Shards int
	// WorkerOverride, when positive, replaces every job's requested
	// Workers — safe because seeded results are worker-count-invariant,
	// and exactly what the chaos harness uses to prove W=1↔W=N resume.
	WorkerOverride int
	// ModelCacheSize is the compile-cache capacity in checked-in app
	// instances (default 8; 0 keeps the default, negative disables).
	ModelCacheSize int
	// CheckpointEverySweeps is the per-job snapshot cadence (default 1:
	// every sweep boundary is durable, the strongest resume guarantee).
	CheckpointEverySweeps int
	// Retry is the transient-failure backoff policy. Zero value gets
	// the serving default (3 retries, 100ms base, 2s cap, 0.5 jitter).
	Retry backoff.Policy
	// BackoffSeed derives the per-job jitter streams (seed ^ job seq).
	// Deliberately separate from every chain seed.
	BackoffSeed uint64
	// Tenants maps tenant names to their limits; unlisted tenants get
	// DefaultLimits.
	Tenants map[string]TenantLimits
	// DefaultLimits applies to tenants absent from Tenants (zero value:
	// unlimited rate, unlimited quota).
	DefaultLimits TenantLimits
	// RetryAfterHint is the Retry-After returned on queue-full sheds
	// (default 1s).
	RetryAfterHint time.Duration
	// Recorder is the server-wide metrics registry (default: a fresh
	// obs.New()). Queue-depth and in-flight gauges, shed/retry/deadline
	// counters, per-tenant counters and job-latency histograms land
	// here; /metrics serves it.
	Recorder *obs.Registry
	// Now supplies the wall clock (default time.Now — injected so tests
	// and the detrand determinism discipline control time).
	Now func() time.Time
	// Sleep waits out backoff delays (default backoff.SleepTimer).
	Sleep backoff.SleepFunc
	// Migrate, when non-nil, makes this server one side of a two-node
	// replication pair (internal/serve/migrate): a primary (Peer set)
	// acquires an epoch lease and streams every journal frame and chain
	// snapshot to its standby; a standby (Standby set) receives them
	// and takes over when the primary's heartbeats stop.
	Migrate *migrate.Config
	// EventsHeartbeat is the cadence of heartbeat lines on followed
	// /v1/jobs/{id}/events streams while the job is queued or running
	// (default 15s; negative disables).
	EventsHeartbeat time.Duration

	// preSolve is a test hook invoked before each solve attempt; a
	// non-nil return is handled exactly like a solver error. Unexported:
	// only this package's tests can arm it.
	preSolve func(jobID string, attempt int) error
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.ModelCacheSize == 0 {
		cfg.ModelCacheSize = 8
	}
	if cfg.CheckpointEverySweeps == 0 {
		cfg.CheckpointEverySweeps = 1
	}
	if cfg.Retry.Base == 0 && cfg.Retry.MaxRetries == 0 {
		cfg.Retry = backoff.Policy{
			Base:       100 * time.Millisecond,
			Cap:        2 * time.Second,
			Factor:     2,
			Jitter:     0.5,
			MaxRetries: 3,
		}
	}
	if cfg.RetryAfterHint == 0 {
		cfg.RetryAfterHint = time.Second
	}
	if cfg.Recorder == nil {
		cfg.Recorder = obs.New()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = backoff.SleepTimer
	}
	if cfg.EventsHeartbeat == 0 {
		cfg.EventsHeartbeat = 15 * time.Second
	}
	return cfg
}

// Validate checks the configuration, wrapping ErrInvalidConfig.
func (cfg Config) Validate() error {
	if cfg.StateDir == "" {
		return fmt.Errorf("%w: StateDir is required", ErrInvalidConfig)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("%w: QueueDepth %d < 0", ErrInvalidConfig, cfg.QueueDepth)
	}
	if cfg.Shards < 0 {
		return fmt.Errorf("%w: Shards %d < 0", ErrInvalidConfig, cfg.Shards)
	}
	if cfg.WorkerOverride < 0 || cfg.WorkerOverride > MaxSpecWorkers {
		return fmt.Errorf("%w: WorkerOverride %d outside [0,%d]", ErrInvalidConfig, cfg.WorkerOverride, MaxSpecWorkers)
	}
	if cfg.CheckpointEverySweeps < 0 {
		return fmt.Errorf("%w: CheckpointEverySweeps %d < 0", ErrInvalidConfig, cfg.CheckpointEverySweeps)
	}
	if err := cfg.Retry.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if cfg.Migrate != nil {
		if err := cfg.Migrate.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if err := cfg.DefaultLimits.Validate(); err != nil {
		return err
	}
	for name, tl := range cfg.Tenants {
		if !tenantName.MatchString(name) {
			return fmt.Errorf("%w: tenant name %q (want %s)", ErrInvalidConfig, name, tenantName)
		}
		if err := tl.Validate(); err != nil {
			return fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	return nil
}

// Server is the multi-tenant inference daemon runtime. Construct with
// New (which also recovers the journal), start the shard pool with
// Start, serve Handler over HTTP, and stop with Drain.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	store *store
	cache *appCache

	// repl / standby are the two sides of the migration pair (at most
	// one non-nil, per migrate.Config.Validate).
	repl    *migrate.Primary
	standby *migrate.Standby

	mu       sync.Mutex
	jobs     map[string]*job
	queue    chan *job
	queued   int // client-admitted jobs currently in the queue
	running  int
	seq      uint64
	tenants  map[string]*tenantState
	draining bool
	started  bool
	// active gates admission and job execution enqueueing: true on an
	// unreplicated server, after the lease grant on a primary, and
	// after takeover on a standby.
	active bool
	// fenced latches when the peer refused this node's lease epoch —
	// the node stops committing state permanently.
	fenced bool
	// pendingRecovered holds journal-recovered jobs on a replicated
	// primary until its lease is granted.
	pendingRecovered []*job

	runCtx     context.Context
	cancelRun  context.CancelFunc
	replCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New validates the configuration, opens the state directory, and
// recovers the journal: every non-terminal job found there is re-queued
// with resume armed, in original admission order, ahead of any new
// submissions. Terminal jobs stay addressable for status and labels.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	st, err := newStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	replicated := cfg.Migrate != nil && cfg.Migrate.Peer != ""
	standbyMode := cfg.Migrate != nil && cfg.Migrate.Standby
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Recorder,
		store:   st,
		cache:   newAppCache(cfg.ModelCacheSize),
		jobs:    map[string]*job{},
		tenants: map[string]*tenantState{},
		active:  !replicated && !standbyMode,
	}
	var recovered []*job
	if !standbyMode {
		// A standby skips journal recovery entirely: the primary is
		// streaming the live truth into the journal, and takeover()
		// rebuilds from it at promotion time. Recovering here would
		// freeze a stale view and fight the incoming frames.
		recs, err := st.Load()
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			status, err := st.GetStatus(rec.ID)
			if err != nil {
				return nil, err
			}
			if rec.Seq >= s.seq {
				s.seq = rec.Seq + 1
			}
			j := newJob(rec, status)
			s.jobs[rec.ID] = j
			if status.State.Terminal() {
				j.events.Close()
				continue
			}
			j.resumed = status.Sweeps > 0 || status.Attempts > 0
			j.setState(func(st *jobStatus) { st.State = StateQueued })
			if _, err := st.PutStatus(rec.ID, j.Status()); err != nil {
				return nil, err
			}
			recovered = append(recovered, j)
			s.tenant(rec.Tenant).inflight++
		}
	}
	// The queue channel is sized so that recovery plus a full client
	// admission window can never block a push: shedding is enforced by
	// the queued counter, not by channel capacity. (Takeover and
	// adoption enqueue through feedQueue, which never blocks a caller.)
	s.queue = make(chan *job, cfg.QueueDepth+len(recovered)+1)
	if s.active {
		for _, j := range recovered {
			j.queuedOnce = true
			s.queue <- j
			s.queued++
			obs.Add(s.reg, "serve.jobs.recovered", 1)
		}
	} else {
		// A leaseless primary holds its recovered jobs until activate().
		s.pendingRecovered = recovered
	}
	if replicated {
		p, err := migrate.NewPrimary(cfg.StateDir, *cfg.Migrate, s.reg,
			s.store.CheckpointPath, s.activate, s.fence)
		if err != nil {
			return nil, err
		}
		s.repl = p
	}
	if standbyMode {
		sb, err := migrate.NewStandby(cfg.StateDir, *cfg.Migrate, s.reg, migrate.Hooks{
			WriteRecord:  s.store.PutRawRecord,
			WriteStatus:  s.store.PutRawStatus,
			WriteLabels:  s.store.PutLabels,
			SnapshotPath: s.store.CheckpointPath,
			Adopt:        s.adoptJob,
			Takeover:     s.takeover,
		})
		if err != nil {
			return nil, err
		}
		s.standby = sb
		if sb.TookOver() {
			// A restarted standby that had already seized ownership
			// resumes it immediately (the ledger is durable).
			s.takeover(0)
		}
	}
	s.gauges()
	return s, nil
}

// tenant returns (creating on first use) the tenant's state. Callers
// hold s.mu or are in single-threaded construction.
func (s *Server) tenant(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		tl, listed := s.cfg.Tenants[name]
		if !listed {
			tl = s.cfg.DefaultLimits
		}
		t = newTenantState(tl, s.cfg.Now())
		s.tenants[name] = t
	}
	return t
}

// Start launches the shard pool under ctx. Canceling ctx is a hard
// stop (jobs park as preempted at their next sweep boundary); prefer
// Drain for the graceful path.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("%w: Start called twice", ErrInvalidConfig)
	}
	s.started = true
	s.runCtx, s.cancelRun = context.WithCancel(ctx)
	for i := 0; i < s.cfg.Shards; i++ {
		s.wg.Add(1)
		go func(shard int) {
			defer s.wg.Done()
			s.shardLoop(s.runCtx, shard)
		}(i)
	}
	// Replication runs on its own context derived from the caller's,
	// NOT runCtx: a drain cancels the shards first, then flushes the
	// replication queue, and only then stops the sender/detector.
	if s.repl != nil || s.standby != nil {
		rctx, cancel := context.WithCancel(ctx)
		s.replCancel = cancel
		if s.repl != nil {
			go func() { _ = s.repl.Run(rctx) }()
		}
		if s.standby != nil {
			go func() { _ = s.standby.Run(rctx) }()
		}
	}
	return nil
}

// Drain gracefully stops the server: admission turns off (submits get
// ErrDraining), every in-flight chain is canceled and writes its final
// checkpoint at the next sweep boundary, queued jobs stay journaled,
// and the shard pool exits. Returns once all shards have parked or ctx
// expires. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	wasStarted := s.started
	s.draining = true
	s.gaugesLocked()
	if s.cancelRun != nil {
		s.cancelRun()
	}
	s.mu.Unlock()
	if !wasStarted {
		return nil
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
	// Shards are parked and every in-flight chain has written its final
	// checkpoint; flush the replication queue so the standby holds the
	// newest state before the sender stops.
	if s.repl != nil {
		_ = s.repl.Flush(ctx)
	}
	s.mu.Lock()
	replCancel := s.replCancel
	// End every live event stream so followers drain and disconnect
	// (otherwise they would pin the HTTP shutdown).
	for _, j := range s.jobs {
		j.events.Close()
	}
	s.mu.Unlock()
	if replCancel != nil {
		replCancel()
	}
	return nil
}

// Draining reports whether admission is off.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Metrics returns the server-wide registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Active reports whether this node owns job execution (unreplicated,
// leased primary, or promoted standby).
func (s *Server) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Fenced reports whether the peer refused this node's lease epoch.
func (s *Server) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

// activate runs when the standby grants this primary its lease: jobs
// recovered from the journal finally enqueue, and the whole journal is
// re-replicated so the standby can fail over even for jobs admitted
// under an earlier lease.
func (s *Server) activate(epoch uint64) {
	s.mu.Lock()
	if s.active || s.fenced {
		s.mu.Unlock()
		return
	}
	s.active = true
	pending := s.pendingRecovered
	s.pendingRecovered = nil
	for _, j := range pending {
		j.queuedOnce = true
	}
	known := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		known = append(known, j)
	}
	s.gaugesLocked()
	s.mu.Unlock()

	for _, j := range pending {
		s.mu.Lock()
		s.queued++
		s.gaugesLocked()
		s.mu.Unlock()
		s.queue <- j
		obs.Add(s.reg, "serve.jobs.recovered", 1)
	}
	// Initial journal sync. Frame order per job (record before status)
	// matches the store's recovery contract; snapshots ride the dirty
	// set. Terminal outputs replicate too, so a failed-over standby can
	// serve every job's labels.
	for _, j := range known {
		if data, err := json.MarshalIndent(j.rec, "", "  "); err == nil {
			s.repl.Record(j.rec.ID, data)
		}
		st := j.Status()
		if data, err := json.MarshalIndent(st, "", "  "); err == nil {
			s.repl.Status(j.rec.ID, data)
		}
		if st.State == StateDone || st.State == StateExpired {
			if data, err := os.ReadFile(s.store.LabelsPath(j.rec.ID)); err == nil {
				s.repl.Labels(j.rec.ID, data)
			}
		}
		s.repl.Snapshot(j.rec.ID)
	}
	obs.Add(s.reg, "serve.migrate.activations", 1)
}

// fence runs when the peer refuses this node's lease epoch: a newer
// epoch owns the jobs, so this node must never commit state again. It
// behaves like a drain that cannot be undone — admission off, chains
// canceled at their next sweep boundary (their local checkpoints stay,
// but no frame leaves the node).
func (s *Server) fence() {
	s.mu.Lock()
	if s.fenced {
		s.mu.Unlock()
		return
	}
	s.fenced = true
	s.active = false
	s.draining = true
	cancel := s.cancelRun
	s.gaugesLocked()
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// takeover promotes this standby: the replicated journal is re-scanned
// and every non-terminal job enqueues exactly as local crash recovery
// would — the replicated snapshot carries the chain, and worker-count
// invariance means it resumes bit-exactly whatever W the primary ran.
// Runs on the failure detector's goroutine (or New, for a restarted
// already-promoted standby), so the queue is fed asynchronously.
func (s *Server) takeover(uint64) {
	recs, err := s.store.Load()
	if err != nil {
		obs.Add(s.reg, "serve.journal.errors", 1)
		recs = nil
	}
	var enqueue []*job
	s.mu.Lock()
	s.active = true
	for _, rec := range recs {
		j, ok := s.jobs[rec.ID]
		if !ok {
			status, serr := s.store.GetStatus(rec.ID)
			if serr != nil {
				obs.Add(s.reg, "serve.journal.errors", 1)
				continue
			}
			if rec.Seq >= s.seq {
				s.seq = rec.Seq + 1
			}
			j = newJob(rec, status)
			s.jobs[rec.ID] = j
		}
		st := j.Status()
		if st.State.Terminal() {
			j.events.Close()
			continue
		}
		if j.queuedOnce {
			continue
		}
		j.queuedOnce = true
		j.resumed = st.Sweeps > 0 || st.Attempts > 0
		j.setState(func(st *jobStatus) {
			st.State = StateQueued
			st.Peer = ""
		})
		s.tenant(rec.Tenant).inflight++
		enqueue = append(enqueue, j)
	}
	s.gaugesLocked()
	s.mu.Unlock()
	s.feedQueue(enqueue)
}

// adoptJob is the standby's planned-handoff hook: the primary has
// flushed the job's frames and snapshot, and now transfers execution.
// Idempotent — a retried adopt finds queuedOnce set and does nothing.
func (s *Server) adoptJob(id string) error {
	rec, err := s.store.GetRecord(id)
	if err != nil {
		return err
	}
	status, err := s.store.GetStatus(id)
	if err != nil {
		return err
	}
	var enqueue []*job
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		if rec.Seq >= s.seq {
			s.seq = rec.Seq + 1
		}
		j = newJob(rec, status)
		s.jobs[id] = j
	}
	st := j.Status()
	switch {
	case st.State.Terminal():
		j.events.Close()
	case j.queuedOnce:
		// Already adopted (or recovered by a takeover racing this
		// handoff); nothing to do.
	default:
		j.queuedOnce = true
		j.resumed = st.Sweeps > 0 || st.Attempts > 0
		j.setState(func(st *jobStatus) {
			st.State = StateQueued
			st.Peer = ""
		})
		s.tenant(j.rec.Tenant).inflight++
		enqueue = append(enqueue, j)
	}
	s.gaugesLocked()
	s.mu.Unlock()
	s.feedQueue(enqueue)
	return nil
}

// feedQueue persists the queued statuses and pushes the jobs onto the
// shard queue from a separate goroutine — takeover and adoption run on
// replication goroutines that must never block on queue capacity.
func (s *Server) feedQueue(jobs []*job) {
	if len(jobs) == 0 {
		return
	}
	go func() {
		for _, j := range jobs {
			if _, err := s.store.PutStatus(j.rec.ID, j.Status()); err != nil {
				obs.Add(s.reg, "serve.journal.errors", 1)
			}
			s.mu.Lock()
			s.queued++
			s.gaugesLocked()
			s.mu.Unlock()
			s.queue <- j
			obs.Add(s.reg, "serve.jobs.recovered", 1)
		}
	}()
}

// MigrateJob starts a planned handoff: the job's in-flight attempt (if
// any) stops at its next sweep boundary, replication flushes its final
// checkpoint, and the peer adopts execution. The handoff completes
// asynchronously; poll the job for the migrated state.
func (s *Server) MigrateJob(id string) error {
	if s.repl == nil {
		return ErrNoPeer
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if st := j.Status(); st.State.Terminal() {
		return fmt.Errorf("serve: job %s already terminal (%s)", id, st.State)
	}
	obs.Add(s.reg, "serve.migrate.requests", 1)
	j.setMigrating(true)
	j.cancelAttempt()
	return nil
}

// handoff completes a planned migration on the owning shard: the final
// snapshot is marked dirty, the replication queue flushes (record,
// statuses, snapshot — everything the peer needs), and the peer adopts
// the job. Failure is not terminal: the job clears its migrating flag
// and re-queues locally.
func (s *Server) handoff(ctx context.Context, j *job) {
	id := j.rec.ID
	err := func() error {
		if s.repl == nil {
			return ErrNoPeer
		}
		s.repl.Snapshot(id)
		if err := s.repl.Flush(ctx); err != nil {
			return err
		}
		return s.repl.Adopt(ctx, id)
	}()
	if err != nil {
		obs.Add(s.reg, "serve.migrate.handoff_failures", 1)
		j.setMigrating(false)
		s.persist(j, 0, func(st *jobStatus) {
			st.State = StateQueued
		})
		s.mu.Lock()
		s.queued++
		s.gaugesLocked()
		s.mu.Unlock()
		s.queue <- j
		return
	}
	// Mark migrated BEFORE persisting, so the terminal status is local
	// only: the peer owns the job's status stream from here on.
	j.setMigrated()
	s.persist(j, 0, func(st *jobStatus) {
		st.State = StateMigrated
		st.Peer = s.cfg.Migrate.Peer
		st.Error = ""
	})
	obs.Add(s.reg, "serve.migrate.jobs_migrated", 1)
}

// Submit admits one job for tenant: spec validation, tenant token
// bucket, tenant quota, then a bounded-queue reservation — shedding
// with a typed ShedError at the first limit hit — and only then the
// durable journal write that makes the job real. Never blocks on queue
// capacity.
func (s *Server) Submit(tenant string, spec JobSpec) (id string, err error) {
	if !tenantName.MatchString(tenant) {
		return "", fmt.Errorf("%w: tenant name %q (want %s)", ErrInvalidSpec, tenant, tenantName)
	}
	if err := spec.Validate(); err != nil {
		obs.Add(s.reg, "serve.jobs.rejected", 1)
		return "", err
	}
	spec = spec.withDefaults()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.draining", 1)
		return "", ErrDraining
	}
	if !s.active {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.inactive", 1)
		return "", ErrNotActive
	}
	t := s.tenant(tenant)
	if ok, retry := t.admit(s.cfg.Now()); !ok {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.rate", 1)
		obs.Add(s.reg, "serve.tenant."+tenant+".shed", 1)
		return "", &ShedError{Reason: "rate-limited", RetryAfter: retry}
	}
	if !t.quotaOK() {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.quota", 1)
		obs.Add(s.reg, "serve.tenant."+tenant+".shed", 1)
		return "", &ShedError{Reason: "quota", RetryAfter: s.cfg.RetryAfterHint}
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		obs.Add(s.reg, "serve.shed.queue", 1)
		obs.Add(s.reg, "serve.tenant."+tenant+".shed", 1)
		return "", &ShedError{Reason: "queue-full", RetryAfter: s.cfg.RetryAfterHint}
	}
	seq := s.seq
	s.seq++
	rec := jobRecord{
		ID:     fmt.Sprintf("%s-%06d", tenant, seq),
		Tenant: tenant,
		Seq:    seq,
		Spec:   spec,
	}
	j := newJob(rec, jobStatus{State: StateQueued})
	j.queuedOnce = true
	// Reserve the slot before releasing the lock so concurrent submits
	// see the queue fill immediately; roll back if the journal write
	// fails.
	s.jobs[rec.ID] = j
	s.queued++
	t.inflight++
	s.gaugesLocked()
	s.mu.Unlock()

	recData, err := s.store.PutRecord(rec)
	if err != nil {
		s.mu.Lock()
		delete(s.jobs, rec.ID)
		s.queued--
		t.inflight--
		s.gaugesLocked()
		s.mu.Unlock()
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	if s.repl != nil {
		s.repl.Record(rec.ID, recData)
	}
	s.emitState(j, j.Status(), 0)
	s.queue <- j
	obs.Add(s.reg, "serve.jobs.accepted", 1)
	obs.Add(s.reg, "serve.tenant."+tenant+".accepted", 1)
	return rec.ID, nil
}

// Job returns the job's record and current status.
func (s *Server) Job(id string) (jobRecord, jobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return jobRecord{}, jobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.rec, j.Status(), nil
}

// Jobs lists every known job ID in admission order.
func (s *Server) Jobs() []jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]jobRecord, 0, len(s.jobs))
	for _, j := range s.jobs {
		recs = append(recs, j.rec)
	}
	for i := 1; i < len(recs); i++ { // insertion sort by seq; list endpoints are cold
		for k := i; k > 0 && recs[k-1].Seq > recs[k].Seq; k-- {
			recs[k-1], recs[k] = recs[k], recs[k-1]
		}
	}
	return recs
}

// Labels returns the terminal label bytes (PGM) for a done or expired
// job.
func (s *Server) Labels(id string) ([]byte, error) {
	_, status, err := s.Job(id)
	if err != nil {
		return nil, err
	}
	switch status.State {
	case StateDone, StateExpired:
		return os.ReadFile(s.store.LabelsPath(id))
	default:
		return nil, fmt.Errorf("serve: job %s not terminal (state %s)", id, status.State)
	}
}

// shardLoop pulls jobs until the run context dies.
func (s *Server) shardLoop(ctx context.Context, shard int) {
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.queue:
			s.mu.Lock()
			s.queued--
			s.running++
			s.gaugesLocked()
			s.mu.Unlock()
			s.runJob(ctx, j)
			s.mu.Lock()
			s.running--
			s.gaugesLocked()
			s.mu.Unlock()
		}
	}
}

// runJob drives one job to a terminal or parked state: the backoff.Do
// retry loop around attempts, permanent-error classification, and the
// final bookkeeping (tenant quota release, latency histogram).
func (s *Server) runJob(ctx context.Context, j *job) {
	start := s.cfg.Now()
	// The jitter stream is keyed by the job's admission sequence and the
	// server's backoff seed — disjoint by construction from every chain
	// seed, which only ever reaches rng.New through gibbs.Run.
	jitter := rng.New(s.cfg.BackoffSeed ^ (j.rec.Seq+1)*0x9e3779b97f4a7c15)
	policy := s.cfg.Retry
	policy.Permanent = append(append([]error(nil), policy.Permanent...),
		core.ErrInvalidConfig, ErrInvalidSpec, checkpoint.ErrMismatch, checkpoint.ErrVersion)

	err := backoff.Do(ctx, policy, jitter, s.cfg.Sleep, func(ctx context.Context, attempt int) (aerr error) {
		// A panicking attempt (hostile spec reaching an assertion, a bug
		// in one workload) fails that job permanently instead of taking
		// down the daemon and every other tenant's jobs with it.
		defer func() {
			if r := recover(); r != nil {
				obs.Add(s.reg, "serve.attempt.panics", 1)
				aerr = backoff.Permanent(fmt.Errorf("serve: attempt panic: %v", r))
			}
		}()
		return s.attempt(ctx, j, attempt)
	})

	s.mu.Lock()
	tenant := s.tenant(j.rec.Tenant)
	s.mu.Unlock()

	switch {
	case err == nil:
		// Terminal state (done or deadline-exceeded) already persisted
		// by the attempt.
	case errors.Is(err, errMigrate):
		// Planned handoff: flush replication and transfer execution to
		// the peer (or re-queue locally on failure).
		s.handoff(ctx, j)
	case errors.Is(err, errPreempted), ctx.Err() != nil:
		// Parked, not terminal: quota stays held on the journal, and the
		// restarted server re-counts it during recovery. The ctx.Err()
		// arm catches a drain landing mid-backoff-wait — Do surfaces the
		// attempt's transient error then, not a preemption marker.
		if !errors.Is(err, errPreempted) {
			s.persist(j, 0, func(st *jobStatus) { st.State = StatePreempted })
			obs.Add(s.reg, "serve.jobs.preempted", 1)
		}
	default:
		obs.Add(s.reg, "serve.jobs.failed", 1)
		s.persist(j, 0, func(st *jobStatus) {
			st.State = StateFailed
			st.Error = err.Error()
		})
	}

	status := j.Status()
	if status.State.Terminal() {
		j.events.Close()
		s.mu.Lock()
		tenant.inflight--
		s.gaugesLocked()
		s.mu.Unlock()
		s.reg.Observe("serve.job.latency_seconds", s.cfg.Now().Sub(start).Seconds())
		obs.Add(s.reg, "serve.tenant."+j.rec.Tenant+".terminal", 1)
	}
}

// attempt runs one solve attempt end to end and persists any terminal
// outcome itself. Its error return drives retry classification only:
// nil for a terminal outcome (done or expired), errPreempted (wrapped
// Permanent) when the server is stopping, a transient error to back
// off and retry, or a permanent error to fail.
func (s *Server) attempt(ctx context.Context, j *job, attempt int) error {
	if j.isMigrating() {
		// A planned handoff armed while the job was queued or waiting
		// out a backoff: hand it off without starting the attempt.
		return backoff.Permanent(errMigrate)
	}
	if ctx.Err() != nil {
		s.persist(j, attempt, func(st *jobStatus) { st.State = StatePreempted })
		obs.Add(s.reg, "serve.jobs.preempted", 1)
		return backoff.Permanent(errPreempted)
	}
	if hook := s.cfg.preSolve; hook != nil {
		if err := hook(j.rec.ID, attempt); err != nil {
			return s.attemptFailed(j, attempt, err)
		}
	}

	spec := j.rec.Spec
	prev := j.Status()
	faultPolicy := fault.PolicyRemap
	if prev.FaultPolicy != "" {
		p, err := fault.ParsePolicy(prev.FaultPolicy)
		if err != nil {
			return backoff.Permanent(fmt.Errorf("%w: %v", ErrInvalidSpec, err))
		}
		faultPolicy = p
	} else if spec.FaultPolicy != "" {
		p, err := fault.ParsePolicy(spec.FaultPolicy)
		if err != nil {
			return backoff.Permanent(fmt.Errorf("%w: %v", ErrInvalidSpec, err))
		}
		faultPolicy = p
	}

	workers := spec.Workers
	if s.cfg.WorkerOverride > 0 {
		workers = s.cfg.WorkerOverride
	}
	ckptPath := s.store.CheckpointPath(j.rec.ID)
	// Every durable snapshot marks the job's replication state dirty;
	// the sender ships the newest generation. The hook runs on the
	// solve goroutine, so it only flips a flag.
	var onSave func(int)
	if s.repl != nil {
		id := j.rec.ID
		onSave = func(int) {
			if !j.isMigrated() {
				s.repl.Snapshot(id)
			}
		}
	}
	cfg, err := solverConfig(spec, faultPolicy, workers, ckptPath, s.cfg.CheckpointEverySweeps, onSave)
	if err != nil {
		return backoff.Permanent(err)
	}
	cfg.Recorder = j.reg

	key := spec.ModelKey()
	app := s.cache.Get(key)
	if app == nil {
		obs.Add(s.reg, "serve.cache.misses", 1)
		app, err = buildApp(spec)
		if err != nil {
			return backoff.Permanent(err)
		}
	} else {
		obs.Add(s.reg, "serve.cache.hits", 1)
	}
	defer func() {
		if r := recover(); r != nil {
			// Do not check a panicked-over instance back in — its state
			// is suspect and would poison later jobs. Re-panic for the
			// attempt-level containment above.
			panic(r)
		}
		s.cache.Put(key, app)
	}()

	solver, err := core.NewSolver(app, cfg)
	if err != nil {
		return s.attemptFailed(j, attempt, err)
	}

	s.persist(j, attempt, func(st *jobStatus) {
		st.State = StateRunning
		st.Attempts = attempt + 1
		st.FaultPolicy = faultPolicy.String()
		st.Error = ""
	})

	// The attempt runs under its own cancel so a planned handoff can
	// stop this chain at its next sweep boundary without touching the
	// shard's run context. Re-check the flag after publishing the
	// cancel func: a MigrateJob landing in between would miss it.
	actx, cancelAttempt := context.WithCancel(ctx)
	defer cancelAttempt()
	j.setAttemptCancel(cancelAttempt)
	defer j.setAttemptCancel(nil)
	if j.isMigrating() {
		cancelAttempt()
	}

	res, err := solver.Solve(actx)

	switch {
	case err == nil:
		if spec.Faults != "" && res.FaultAudit != nil && res.FaultAudit.Summary.Unaccounted > 0 {
			return s.degraded(j, attempt, faultPolicy, res)
		}
		return s.finish(j, attempt, res, StateDone)
	case errors.Is(err, context.DeadlineExceeded) && actx.Err() == nil:
		// The job's own deadline (core applied Config.Deadline inside
		// this attempt) — terminal, with whatever the chain reached.
		obs.Add(s.reg, "serve.jobs.deadline_exceeded", 1)
		return s.finish(j, attempt, res, StateExpired)
	case actx.Err() != nil && ctx.Err() == nil && j.isMigrating():
		// Planned handoff stopped the chain; its final checkpoint is
		// durable at the cancellation sweep boundary, and OnSave has
		// already marked it for replication.
		s.persist(j, attempt, func(st *jobStatus) {
			st.State = StateMigrating
			if res != nil {
				st.Sweeps = res.Iterations
			}
		})
		return backoff.Permanent(errMigrate)
	case ctx.Err() != nil, actx.Err() != nil:
		// Drain or hard stop: the final checkpoint is already durable
		// (written at the cancellation sweep boundary).
		s.persist(j, attempt, func(st *jobStatus) {
			st.State = StatePreempted
			if res != nil {
				st.Sweeps = res.Iterations
			}
		})
		obs.Add(s.reg, "serve.jobs.preempted", 1)
		return backoff.Permanent(errPreempted)
	default:
		return s.attemptFailed(j, attempt, err)
	}
}

// attemptFailed classifies an attempt error: permanent classes pass
// straight through (backoff.Do stops on them), transient ones persist
// the retry-wait state. A corrupt snapshot — external damage by the
// checkpoint layer's contract — is cleared so the retry restarts the
// chain from scratch.
func (s *Server) attemptFailed(j *job, attempt int, err error) error {
	if errors.Is(err, checkpoint.ErrCorrupt) {
		_ = os.Remove(s.store.CheckpointPath(j.rec.ID))
		obs.Add(s.reg, "serve.ckpt.corrupt_dropped", 1)
	}
	perm := errors.Is(err, core.ErrInvalidConfig) || errors.Is(err, ErrInvalidSpec) ||
		errors.Is(err, checkpoint.ErrMismatch) || errors.Is(err, checkpoint.ErrVersion)
	if !perm {
		obs.Add(s.reg, "serve.retries", 1)
		s.persist(j, attempt, func(st *jobStatus) {
			st.State = StateRetryWait
			st.Error = err.Error()
		})
	}
	return err
}

// degraded handles a fault-armed attempt whose audit shows unaccounted
// injected faults: escalate the degradation policy toward the exact
// CMOS fallback and retry on a fresh chain. An attempt already at
// fallback is accepted — the exact kernel is the strongest response
// available.
func (s *Server) degraded(j *job, attempt int, current fault.Policy, res *core.Result) error {
	next, ok := escalate(current)
	if !ok {
		return s.finish(j, attempt, res, StateDone)
	}
	// The policy is part of the checkpoint fingerprint, so the retry
	// cannot resume the degraded chain; drop the snapshot and start
	// clean under the stronger policy.
	_ = os.Remove(s.store.CheckpointPath(j.rec.ID))
	obs.Add(s.reg, "serve.retries", 1)
	obs.Add(s.reg, "serve.fault.escalations", 1)
	s.persist(j, attempt, func(st *jobStatus) {
		st.State = StateRetryWait
		st.Error = ErrDegraded.Error()
		st.FaultPolicy = next.String()
	})
	return fmt.Errorf("%w: escalating %v -> %v", ErrDegraded, current, next)
}

// escalate returns the next-stronger degradation policy.
func escalate(p fault.Policy) (fault.Policy, bool) {
	switch p {
	case fault.PolicyNone, fault.PolicyRemap, fault.PolicyResample:
		return fault.PolicyQuarantine, true
	case fault.PolicyQuarantine:
		return fault.PolicyFallback, true
	default:
		return p, false
	}
}

// finish persists a terminal result: labels first (durable before the
// status that advertises them), then the status flip. The label bytes
// are the raw label field as a PGM — byte-exact, so clients can golden-
// diff results across resumes.
func (s *Server) finish(j *job, attempt int, res *core.Result, state State) error {
	if res == nil {
		return s.attemptFailed(j, attempt, fmt.Errorf("serve: %s result missing", state))
	}
	lm := res.MAP
	if lm == nil {
		lm = res.Final
	}
	if lm == nil {
		return s.attemptFailed(j, attempt, fmt.Errorf("serve: %s result has no labels", state))
	}
	gray := &img.Gray{W: lm.W, H: lm.H, Pix: append([]uint8(nil), lm.Labels...)}
	var pgm pgmBuffer
	if err := img.EncodePGM(&pgm, gray); err != nil {
		return s.attemptFailed(j, attempt, err)
	}
	if err := s.store.PutLabels(j.rec.ID, pgm.data); err != nil {
		return s.attemptFailed(j, attempt, err)
	}
	if s.repl != nil && !j.isMigrated() {
		s.repl.Labels(j.rec.ID, pgm.data)
	}
	digest := Digest(res)
	// Counters move before the state flips: pollers that observe the
	// terminal state must also observe its counters.
	if state == StateDone {
		obs.Add(s.reg, "serve.jobs.completed", 1)
		if j.resumed {
			obs.Add(s.reg, "serve.jobs.resumed_completed", 1)
		}
	}
	s.persist(j, attempt, func(st *jobStatus) {
		st.State = state
		st.Sweeps = res.Iterations
		st.Digest = digest
		st.Error = ""
	})
	return nil
}

// persist applies a status mutation: journal write first, then the
// job.state event, and only then the in-memory state that pollers see —
// so a client that observes a state has the matching journal entry and
// event stream available. Each job has a single persisting goroutine
// (its owning shard), which is what makes the preview/commit split
// race-free. Journal errors on status rewrites are recorded (counter)
// but do not fail the job: the record file plus the chain snapshot are
// what recovery needs.
func (s *Server) persist(j *job, attempt int, mut func(*jobStatus)) {
	status := j.previewState(mut)
	data, err := s.store.PutStatus(j.rec.ID, status)
	if err != nil {
		obs.Add(s.reg, "serve.journal.errors", 1)
	}
	if s.repl != nil && err == nil && !j.isMigrated() {
		// The exact journal bytes stream to the standby. Migrated jobs
		// are excluded: the peer owns their status from adoption on,
		// and a stale frame must not stomp its progress.
		s.repl.Status(j.rec.ID, data)
	}
	s.emitState(j, status, attempt)
	j.commitState(status)
}

// emitState streams a job state transition into the event buffer.
func (s *Server) emitState(j *job, status jobStatus, attempt int) {
	fields := map[string]any{
		"job":    j.rec.ID,
		"tenant": j.rec.Tenant,
		"state":  string(status.State),
		"sweeps": status.Sweeps,
	}
	if attempt > 0 {
		fields["attempt"] = attempt
	}
	if status.Error != "" {
		fields["error"] = status.Error
	}
	obs.Emit(j.reg, "job.state", fields)
}

// gauges/gaugesLocked refresh the queue and in-flight gauges.
func (s *Server) gauges() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gaugesLocked()
}

func (s *Server) gaugesLocked() {
	s.reg.Gauge("serve.queue.depth", float64(s.queued))
	s.reg.Gauge("serve.jobs.running", float64(s.running))
	drain := 0.0
	if s.draining {
		drain = 1
	}
	s.reg.Gauge("serve.draining", drain)
	active := 0.0
	if s.active {
		active = 1
	}
	s.reg.Gauge("serve.active", active)
	fenced := 0.0
	if s.fenced {
		fenced = 1
	}
	s.reg.Gauge("serve.fenced", fenced)
}

// pgmBuffer is a minimal in-memory io.Writer for PGM encoding (avoids
// importing bytes just for a buffer).
type pgmBuffer struct{ data []byte }

func (b *pgmBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
