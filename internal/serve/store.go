package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// store is the durable job journal: one record file per accepted job
// (written once, before the 202 is returned), one status file rewritten
// atomically on every state transition, plus the chain snapshot and the
// terminal label output. Layout under the state directory:
//
//	jobs/<id>.json        immutable record: tenant, seq, spec
//	jobs/<id>.status      current status (atomic tmp+rename rewrite)
//	ckpt/<id>.ckpt        chain snapshot (internal/checkpoint format)
//	out/<id>.pgm          terminal labels (raw label bytes as PGM)
//
// The write ordering is the recovery contract: a job exists iff its
// record file exists; its labels file is durable before the status that
// says so. A SIGKILL at any instant therefore leaves every job either
// absent (client never saw 202) or recoverable.
type store struct {
	dir string
}

// jobRecord is the immutable half of a job's journal entry.
type jobRecord struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant"`
	Seq    uint64  `json:"seq"`
	Spec   JobSpec `json:"spec"`
}

// jobStatus is the mutable half, rewritten on every transition.
type jobStatus struct {
	State State `json:"state"`
	// Attempts counts solve attempts started (across restarts).
	Attempts int `json:"attempts"`
	// Sweeps is the last reported completed-sweep count.
	Sweeps int `json:"sweeps"`
	// Error carries the terminal failure (state failed) or the last
	// transient error while retrying.
	Error string `json:"error,omitempty"`
	// Digest fingerprints the chain-derived result bytes (terminal
	// done/expired states only).
	Digest string `json:"digest,omitempty"`
	// FaultPolicy is the degradation policy the next attempt will run
	// with (escalates toward fallback on degraded attempts).
	FaultPolicy string `json:"fault_policy,omitempty"`
	// Peer names the node a migrated job was handed off to (terminal
	// state migrated only).
	Peer string `json:"peer,omitempty"`
}

func newStore(dir string) (*store, error) {
	for _, sub := range []string{"jobs", "ckpt", "out"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
	}
	return &store{dir: dir}, nil
}

func (st *store) recordPath(id string) string { return filepath.Join(st.dir, "jobs", id+".json") }
func (st *store) statusPath(id string) string { return filepath.Join(st.dir, "jobs", id+".status") }

// CheckpointPath returns the job's chain-snapshot path.
func (st *store) CheckpointPath(id string) string { return filepath.Join(st.dir, "ckpt", id+".ckpt") }

// LabelsPath returns the job's terminal-output path.
func (st *store) LabelsPath(id string) string { return filepath.Join(st.dir, "out", id+".pgm") }

// PutRecord durably writes the immutable record (fsynced: the record is
// what makes an accepted job survive SIGKILL, so it must be on disk
// before the client sees 202). The encoded bytes are returned so the
// replication layer can forward the exact journal frame.
func (st *store) PutRecord(rec jobRecord) ([]byte, error) {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return data, atomicWrite(st.recordPath(rec.ID), data)
}

// PutStatus atomically replaces the job's status file, returning the
// encoded bytes for replication.
func (st *store) PutStatus(id string, status jobStatus) ([]byte, error) {
	data, err := json.MarshalIndent(status, "", "  ")
	if err != nil {
		return nil, err
	}
	return data, atomicWrite(st.statusPath(id), data)
}

// PutRawRecord / PutRawStatus install replicated journal frames
// byte-for-byte — the standby's copy of the journal is identical to
// the primary's, so recovery after takeover follows the exact same
// path as recovery after a local restart.
func (st *store) PutRawRecord(id string, data []byte) error {
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("serve: replicated record %s: %w", id, err)
	}
	if rec.ID != id {
		return fmt.Errorf("serve: replicated record id %q != %q", rec.ID, id)
	}
	return atomicWrite(st.recordPath(id), data)
}

func (st *store) PutRawStatus(id string, data []byte) error {
	var status jobStatus
	if err := json.Unmarshal(data, &status); err != nil {
		return fmt.Errorf("serve: replicated status %s: %w", id, err)
	}
	return atomicWrite(st.statusPath(id), data)
}

// GetRecord loads one job's immutable record.
func (st *store) GetRecord(id string) (jobRecord, error) {
	data, err := os.ReadFile(st.recordPath(id))
	if err != nil {
		return jobRecord{}, err
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return jobRecord{}, fmt.Errorf("serve: record %s: %w", id, err)
	}
	return rec, nil
}

// GetStatus loads a job's status. A record with no status file yet is
// reported as queued (the record write precedes the first status write).
func (st *store) GetStatus(id string) (jobStatus, error) {
	data, err := os.ReadFile(st.statusPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return jobStatus{State: StateQueued}, nil
	}
	if err != nil {
		return jobStatus{}, err
	}
	var status jobStatus
	if err := json.Unmarshal(data, &status); err != nil {
		return jobStatus{}, fmt.Errorf("serve: status %s: %w", id, err)
	}
	return status, nil
}

// PutLabels durably writes the terminal label bytes.
func (st *store) PutLabels(id string, pgm []byte) error {
	return atomicWrite(st.LabelsPath(id), pgm)
}

// Load reads every journaled job, sorted by sequence number so recovery
// re-enqueues in admission order.
func (st *store) Load() ([]jobRecord, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var recs []jobRecord
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, "jobs", name))
		if err != nil {
			return nil, err
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("serve: record %s: %w", name, err)
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, nil
}

// atomicWrite writes data to path via tmp+fsync+rename, the same
// torn-write discipline as checkpoint.Save: a crash at any instant
// leaves either the old or the new complete file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
